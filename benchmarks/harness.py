"""Shared infrastructure for the per-table / per-figure benchmarks.

Every benchmark regenerates one table or figure of the paper's evaluation
section on the synthetic dataset profiles (DESIGN.md §3-4).  This module
centralizes: dataset loading (cached), the method registries for clustering
and embedding, failure-tolerant runners (a ``MemoryError`` becomes a ``-``
cell exactly like the paper's OOM entries), and plain-text table rendering.

Results are printed through ``capsys.disabled()`` by the benches (so they
survive pytest's capture into ``bench_output.txt``) and also written under
``benchmarks/results/``.
"""

from __future__ import annotations

import json
import time
from functools import lru_cache
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.baselines import CLUSTERING_BASELINES, EMBEDDING_BASELINES
from repro.core.mvag import MVAG
from repro.core.pipeline import cluster_mvag, embed_mvag
from repro.core.sgla import SGLAConfig
from repro.datasets.profiles import dataset_profile, load_profile_mvag

RESULTS_DIR = Path(__file__).parent / "results"

# The eight paper datasets, at bench scale (RM is already tiny; the rest use
# their ``_small`` profiles so the full table suite completes in minutes).
BENCH_DATASETS: List[str] = [
    "rm",
    "yelp_small",
    "imdb_small",
    "dblp_small",
    "amazon_photos_small",
    "amazon_computers_small",
    "mag_eng_small",
    "mag_phy_small",
]

CLUSTER_METRICS = ["acc", "f1", "nmi", "ari", "purity"]


@lru_cache(maxsize=32)
def bench_mvag(name: str, seed: int = 0) -> MVAG:
    """Cached profile loading so every bench sees identical data."""
    return load_profile_mvag(name, seed=seed)


def profile_config(name: str) -> SGLAConfig:
    """Paper-default SGLA config with the profile's KNN setting."""
    profile = dataset_profile(name)
    return SGLAConfig(knn_k=profile.knn_k)


# --------------------------------------------------------------------- #
# Method registries
# --------------------------------------------------------------------- #


def _sgla_cluster(mvag: MVAG, k: int, seed=0, config=None):
    return cluster_mvag(mvag, k=k, method="sgla", config=config, seed=seed).labels


def _sgla_plus_cluster(mvag: MVAG, k: int, seed=0, config=None):
    return cluster_mvag(mvag, k=k, method="sgla+", config=config, seed=seed).labels


def clustering_methods() -> Dict[str, Callable]:
    """Paper order: baselines first, our methods last."""
    methods: Dict[str, Callable] = {}
    for name in ("wmsc", "2cmv", "mega", "o2mac", "lmgec", "mcgc", "mvagc",
                 "magc"):
        baseline = CLUSTERING_BASELINES[name]
        methods[name] = (
            lambda mvag, k, seed=0, config=None, _fn=baseline: _fn(
                mvag, k, seed=seed
            )
        )
    methods["sgla"] = _sgla_cluster
    methods["sgla+"] = _sgla_plus_cluster
    return methods


def _sgla_embed(mvag: MVAG, dim: int, seed=0, config=None):
    return embed_mvag(
        mvag, dim=dim, method="sgla", config=config, seed=seed
    ).embedding


def _sgla_plus_embed(mvag: MVAG, dim: int, seed=0, config=None):
    return embed_mvag(
        mvag, dim=dim, method="sgla+", config=config, seed=seed
    ).embedding


def embedding_methods() -> Dict[str, Callable]:
    """Paper order: baselines first, our methods last."""
    methods: Dict[str, Callable] = {}
    for name in ("pane", "o2mac", "hdmi", "lmgec"):
        baseline = EMBEDDING_BASELINES[name]
        methods[name] = (
            lambda mvag, dim, seed=0, config=None, _fn=baseline: _fn(
                mvag, dim, seed=seed
            )
        )
    methods["sgla"] = _sgla_embed
    methods["sgla+"] = _sgla_plus_embed
    return methods


# --------------------------------------------------------------------- #
# Failure-tolerant runners
# --------------------------------------------------------------------- #


def run_clustering(
    method: str, dataset: str, seed: int = 0
) -> Tuple[Optional[np.ndarray], float]:
    """Run one clustering method; ``(None, nan)`` on OOM-style failure."""
    mvag = bench_mvag(dataset, seed=seed)
    config = profile_config(dataset)
    func = clustering_methods()[method]
    start = time.perf_counter()
    try:
        labels = func(mvag, mvag.n_classes, seed=seed, config=config)
    except MemoryError:
        return None, float("nan")
    return labels, time.perf_counter() - start


def run_embedding(
    method: str, dataset: str, dim: int = 64, seed: int = 0
) -> Tuple[Optional[np.ndarray], float]:
    """Run one embedding method; ``(None, nan)`` on OOM-style failure."""
    mvag = bench_mvag(dataset, seed=seed)
    config = profile_config(dataset)
    func = embedding_methods()[method]
    dim = min(dim, mvag.n_nodes - 1)
    start = time.perf_counter()
    try:
        embedding = func(mvag, dim, seed=seed, config=config)
    except MemoryError:
        return None, float("nan")
    return embedding, time.perf_counter() - start


# --------------------------------------------------------------------- #
# Reporting
# --------------------------------------------------------------------- #


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence], title: str = ""
) -> str:
    """Fixed-width plain-text table."""
    rendered_rows = [
        [_render_cell(cell) for cell in row] for row in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered_rows))
        if rendered_rows
        else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _render_cell(cell) -> str:
    if cell is None:
        return "-"
    if isinstance(cell, float):
        if np.isnan(cell):
            return "-"
        return f"{cell:.3f}"
    return str(cell)


def emit(name: str, text: str, capsys=None) -> None:
    """Print a result block through capture and persist it to disk."""
    banner = f"\n===== {name} =====\n{text}\n"
    if capsys is not None:
        with capsys.disabled():
            print(banner)
    else:  # pragma: no cover - direct script usage
        print(banner)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def _jsonable(value):
    """Recursively coerce numpy scalars/arrays so json.dumps accepts them."""
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.ndarray):
        return _jsonable(value.tolist())
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    return value


def emit_json(name: str, payload: dict, echo: bool = False) -> dict:
    """Persist a benchmark's machine-readable results.

    Writes ``benchmarks/results/<name>.json`` alongside the plain-text
    table :func:`emit` produces, so the perf trajectory (speedups, matvec
    counts, wall seconds) is trackable across PRs and diffable in
    review.  ``echo`` additionally prints the JSON to stdout (the bench
    scripts' ``--json`` flag).  Returns the JSON-clean payload.
    """
    payload = _jsonable(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    text = json.dumps(payload, indent=2, sort_keys=True)
    (RESULTS_DIR / f"{name}.json").write_text(text + "\n")
    if echo:  # pragma: no cover - direct script usage
        print(text)
    return payload
