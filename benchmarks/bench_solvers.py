"""Spectral-solver backend benchmark (DESIGN.md §7).

Compares every registered backend — dense / lanczos / lobpcg /
shift-invert — on aggregated MVAG Laplacians at several sizes, and
measures the ``batch`` backend's wall-clock win over naive sequential
solves of a set of related weight vectors (the SGLA+ sampling workload).
The batch win combines thread-level overlap (scipy's solvers release the
GIL) with shared warm-start seeding; on a single-core host the seeding
term is what remains, so the acceptance floor gates on the combined
wall-clock only.

Runs as a pytest benchmark (``pytest benchmarks/bench_solvers.py``) or as
a plain script; ``python benchmarks/bench_solvers.py --smoke`` executes a
reduced matrix suitable as a CI perf smoke check (exits nonzero if the
batch backend fails to beat sequential solves).  Results are written
under ``benchmarks/results/``.
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

# Importable both under pytest (benchmarks/conftest.py) and as a script.
sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np

from harness import emit, format_table
from repro.core.laplacian import aggregate_laplacians, build_view_laplacians
from repro.datasets.generator import generate_mvag
from repro.solvers import BatchedBackend, EigenProblem, get_backend

#: acceptance floor — the batch backend must beat sequential wall-clock.
BATCH_FLOOR = 1.0

#: dense is O(n^3); skip it beyond this size to bound benchmark runtime.
DENSE_LIMIT = 2500

#: shift-invert's sparse LU fill-in explodes on KNN-union patterns (~20s
#: at n=5000, ~2min at n=10000 on this container); cap it like dense.
SHIFT_INVERT_LIMIT = 2500


def _laplacians(n, seed=0):
    mvag = generate_mvag(
        n_nodes=n,
        n_clusters=4,
        graph_view_strengths=[0.8, 0.4, 0.2],
        attribute_view_dims=[24],
        avg_degree=12,
        seed=seed,
    )
    return build_view_laplacians(mvag, knn_k=5)


def _nearby_weights(r, count, scale=0.02, seed=0):
    """Weight vectors clustered around uniform — the optimizer workload."""
    rng = np.random.default_rng(seed)
    base = np.full(r, 1.0 / r)
    rows = []
    for _ in range(count):
        weights = np.clip(base + rng.normal(scale=scale, size=r), 0.02, None)
        rows.append(weights / weights.sum())
    return rows


def _best_of(func, repeats=3):
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def bench_backends(sizes, t=5, seed=0):
    """One solve per backend per size; time + error vs the reference."""
    rows = []
    for n in sizes:
        laplacians = _laplacians(n, seed=seed)
        weights = np.full(len(laplacians), 1.0 / len(laplacians))
        laplacian = aggregate_laplacians(laplacians, weights)
        reference = None
        limits = {"dense": DENSE_LIMIT, "shift-invert": SHIFT_INVERT_LIMIT}
        for name in ("dense", "lanczos", "lobpcg", "shift-invert"):
            if n > limits.get(name, n):
                rows.append((n, name, None, None, None))
                continue
            backend = get_backend(name)
            problem = EigenProblem(laplacian, t, seed=seed)
            result = backend.solve(problem)  # warm the caches, keep values
            elapsed = _best_of(lambda: backend.solve(problem))
            if reference is None:
                reference = result.values
            error = float(np.max(np.abs(result.values - reference)))
            rows.append((n, name, elapsed * 1e3, f"{error:.1e}", error))
    return rows


def bench_batch(n, count, t=5, seed=0):
    """Sequential cold solves vs one threaded, seed-shared batch call."""
    laplacians = _laplacians(n, seed=seed)
    matrices = [
        aggregate_laplacians(laplacians, w)
        for w in _nearby_weights(len(laplacians), count, seed=seed)
    ]
    problems = [EigenProblem(m, t, seed=seed) for m in matrices]
    lanczos = get_backend("lanczos")
    batch = BatchedBackend()

    sequential_results = [lanczos.solve(p) for p in problems]
    sequential_seconds = _best_of(
        lambda: [lanczos.solve(p) for p in problems]
    )
    batch_results = batch.solve_many([EigenProblem(m, t, seed=seed) for m in matrices])
    batch_seconds = _best_of(
        lambda: batch.solve_many([EigenProblem(m, t, seed=seed) for m in matrices])
    )
    max_error = max(
        float(np.max(np.abs(a.values - b.values)))
        for a, b in zip(sequential_results, batch_results)
    )
    return {
        "n": n,
        "count": count,
        "sequential_s": sequential_seconds,
        "batch_s": batch_seconds,
        "speedup": sequential_seconds / max(batch_seconds, 1e-12),
        "sequential_matvecs": sum(r.matvecs for r in sequential_results),
        "batch_matvecs": sum(r.matvecs for r in batch_results),
        "max_error": max_error,
    }


def run(smoke: bool = False, capsys=None) -> bool:
    """Run the benchmark matrix; returns True when all floors are met."""
    sizes = [800, 2000] if smoke else [800, 2000, 5000, 10000]
    backend_rows = bench_backends(sizes)
    backend_table = format_table(
        ["n", "backend", "solve (ms)", "max |dλ| vs ref"],
        [row[:4] for row in backend_rows],
        title="single-solve backend comparison (t=5 bottom eigenpairs)",
    )

    batch_cases = (
        [(2000, 8)] if smoke else [(2000, 8), (5000, 8), (10000, 12)]
    )
    batch_stats = [bench_batch(n, count) for n, count in batch_cases]
    batch_rows = [
        (
            s["n"],
            s["count"],
            s["sequential_s"],
            s["batch_s"],
            s["speedup"],
            s["sequential_matvecs"],
            s["batch_matvecs"],
        )
        for s in batch_stats
    ]
    batch_table = format_table(
        [
            "n",
            "solves",
            "sequential (s)",
            "batch (s)",
            "speedup",
            "seq matvecs",
            "batch matvecs",
        ],
        batch_rows,
        title="\nbatch backend vs sequential cold solves (nearby weight vectors)",
    )

    emit(
        "solvers" + ("_smoke" if smoke else ""),
        backend_table + "\n" + batch_table,
        capsys,
    )

    ok = True
    # The wall-clock margin on a single-core runner comes from warm-start
    # seeding alone (~1.1x) and sits inside shared-CI timing noise, so
    # smoke mode gates on the deterministic matvec reduction plus a
    # no-clear-regression wall-clock bound; full mode requires the strict
    # wall-clock win.
    floor = 0.85 if smoke else BATCH_FLOOR
    for stats in batch_stats:
        if stats["speedup"] <= floor:
            print(
                f"FAIL: batch backend not faster at n={stats['n']} "
                f"({stats['batch_s']:.3f}s vs {stats['sequential_s']:.3f}s)"
            )
            ok = False
        if stats["batch_matvecs"] >= stats["sequential_matvecs"]:
            print(
                f"FAIL: batch seeding saved no matvecs at n={stats['n']} "
                f"({stats['batch_matvecs']} vs {stats['sequential_matvecs']})"
            )
            ok = False
        if stats["max_error"] > 1e-8:
            print(
                f"FAIL: batch/sequential eigenvalue mismatch "
                f"{stats['max_error']:.2e} at n={stats['n']}"
            )
            ok = False
    # Bench-scale accuracy guard only: lobpcg's default iteration cap
    # bounds its last eigenpair near 1e-5 here; the strict 1e-8 parity is
    # enforced by tests/test_solvers.py on the running example.
    for n, name, elapsed, _, error in backend_rows:
        if error is not None and error > 2e-5:
            print(f"FAIL: backend {name} off by {error:.2e} at n={n}")
            ok = False
    return ok


def test_solvers(benchmark, capsys):
    assert benchmark.pedantic(run, args=(False, capsys), rounds=1, iterations=1)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    sys.exit(0 if run(smoke=smoke) else 1)
