"""Spectral-solver backend benchmark (DESIGN.md §7–8).

Compares every registered backend — dense / lanczos / lobpcg /
shift-invert / chebyshev — on aggregated MVAG Laplacians at several
sizes, measures the ``batch`` backend's wall-clock win over naive
sequential solves of a set of related weight vectors (the SGLA+ sampling
workload), profiles the ``chebyshev`` filtered backend against ARPACK
cold solves across spectrum shapes, and measures the adaptive-precision
**tolerance ladder** (SGLA end-to-end: trust-radius-driven eigensolve
tolerances versus fixed-tolerance solves — same ``w*``, fewer matvecs).

The batch win combines thread-level overlap (scipy's solvers release the
GIL) with shared warm-start seeding; on a single-core host the seeding
term is what remains, so the acceptance floor gates on the combined
wall-clock only.  The ladder win is deterministic (it removes solver
iterations, not work that depends on the host), so it is gated in smoke
mode too: strictly fewer matvecs and ``max |dw*| < 1e-6`` vs the
fixed-tolerance run.

Runs as a pytest benchmark (``pytest benchmarks/bench_solvers.py``) or as
a plain script; ``python benchmarks/bench_solvers.py --smoke`` executes a
reduced matrix suitable as a CI perf smoke check (exits nonzero if a
floor is missed).  Results are written under ``benchmarks/results/`` as
both ``.txt`` tables and machine-readable ``.json`` (``--json`` echoes
the JSON to stdout).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

# Importable both under pytest (benchmarks/conftest.py) and as a script.
sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np

from harness import emit, emit_json, format_table
from repro.core.laplacian import aggregate_laplacians, build_view_laplacians
from repro.core.sgla import SGLA, SGLAConfig
from repro.datasets.generator import generate_mvag
from repro.solvers import BatchedBackend, EigenProblem, get_backend

#: acceptance floor — the batch backend must beat sequential wall-clock.
BATCH_FLOOR = 1.0

#: acceptance ceiling — the ladder's w* must match the fixed-tol run.
LADDER_DELTA_W = 1e-6

#: dense is O(n^3); skip it beyond this size to bound benchmark runtime.
DENSE_LIMIT = 2500

#: shift-invert's sparse LU fill-in explodes on KNN-union patterns (~20s
#: at n=5000, ~2min at n=10000 on this container); cap it like dense.
SHIFT_INVERT_LIMIT = 2500


def _laplacians(n, seed=0, n_clusters=4, strengths=(0.8, 0.4, 0.2),
                attr_dims=(24,), knn_k=5):
    mvag = generate_mvag(
        n_nodes=n,
        n_clusters=n_clusters,
        graph_view_strengths=list(strengths),
        attribute_view_dims=list(attr_dims),
        avg_degree=12,
        seed=seed,
    )
    return build_view_laplacians(mvag, knn_k=knn_k)


def _nearby_weights(r, count, scale=0.02, seed=0):
    """Weight vectors clustered around uniform — the optimizer workload."""
    rng = np.random.default_rng(seed)
    base = np.full(r, 1.0 / r)
    rows = []
    for _ in range(count):
        weights = np.clip(base + rng.normal(scale=scale, size=r), 0.02, None)
        rows.append(weights / weights.sum())
    return rows


def _best_of(func, repeats=3):
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def bench_backends(sizes, t=5, seed=0):
    """One solve per backend per size; time + error vs the reference."""
    rows = []
    for n in sizes:
        laplacians = _laplacians(n, seed=seed)
        weights = np.full(len(laplacians), 1.0 / len(laplacians))
        laplacian = aggregate_laplacians(laplacians, weights)
        reference = None
        limits = {"dense": DENSE_LIMIT, "shift-invert": SHIFT_INVERT_LIMIT}
        for name in ("dense", "lanczos", "lobpcg", "shift-invert",
                     "chebyshev"):
            if n > limits.get(name, n):
                rows.append((n, name, None, None, None))
                continue
            backend = get_backend(name)
            problem = EigenProblem(laplacian, t, seed=seed)
            result = backend.solve(problem)  # warm the caches, keep values
            elapsed = _best_of(lambda: backend.solve(problem))
            if reference is None:
                reference = result.values
            error = float(np.max(np.abs(result.values - reference)))
            rows.append((n, name, elapsed * 1e3, f"{error:.1e}", error))
    return rows


def bench_batch(n, count, t=5, seed=0):
    """Sequential cold solves vs one threaded, seed-shared batch call."""
    laplacians = _laplacians(n, seed=seed)
    matrices = [
        aggregate_laplacians(laplacians, w)
        for w in _nearby_weights(len(laplacians), count, seed=seed)
    ]
    problems = [EigenProblem(m, t, seed=seed) for m in matrices]
    lanczos = get_backend("lanczos")
    batch = BatchedBackend()

    sequential_results = [lanczos.solve(p) for p in problems]
    sequential_seconds = _best_of(
        lambda: [lanczos.solve(p) for p in problems]
    )
    batch_results = batch.solve_many([EigenProblem(m, t, seed=seed) for m in matrices])
    batch_seconds = _best_of(
        lambda: batch.solve_many([EigenProblem(m, t, seed=seed) for m in matrices])
    )
    max_error = max(
        float(np.max(np.abs(a.values - b.values)))
        for a, b in zip(sequential_results, batch_results)
    )
    return {
        "n": n,
        "count": count,
        "sequential_s": sequential_seconds,
        "batch_s": batch_seconds,
        "speedup": sequential_seconds / max(batch_seconds, 1e-12),
        "sequential_matvecs": sum(r.matvecs for r in sequential_results),
        "batch_matvecs": sum(r.matvecs for r in batch_results),
        "max_error": max_error,
    }


#: spectrum-shape profile for the chebyshev/lanczos comparison:
#: (label, n, n_clusters, strengths, attr_dims, t).  "edge" puts the
#: wanted boundary lambda_{k+1} at the continuum edge (the SGLA
#: objective's t = k + 1 workload); "gap" requests exactly the clustered
#: bottom (t = k) with a large spectral gap above it.
CHEBYSHEV_CONFIGS = [
    ("edge", 2000, 4, (0.8, 0.4, 0.2), (24,), 5),
    ("edge", 5000, 4, (0.8, 0.4, 0.2), (24,), 5),
    ("gap", 2000, 10, (0.99, 0.98), (24,), 10),
    ("gap", 5000, 10, (0.95, 0.9), (24,), 10),
]

CHEBYSHEV_CONFIGS_SMOKE = [
    ("edge", 800, 4, (0.8, 0.4, 0.2), (24,), 5),
    ("gap", 2000, 10, (0.99, 0.98), (24,), 10),
]


def bench_chebyshev(configs, seed=0):
    """Cold chebyshev vs cold lanczos across spectrum shapes.

    Honest head-to-head: on this problem family scipy's ARPACK wins cold
    solves on matvec count (see DESIGN.md §8 for why and for where the
    filtered backend's block/SpMM formulation pays instead); the table
    pins the measured ratios so future backend work — accelerator SpMM
    offload in particular — has a tracked baseline.
    """
    rows = []
    for label, n, k, strengths, attr_dims, t in configs:
        laplacians = _laplacians(
            n, seed=seed, n_clusters=k, strengths=strengths,
            attr_dims=attr_dims,
        )
        weights = np.full(len(laplacians), 1.0 / len(laplacians))
        laplacian = aggregate_laplacians(laplacians, weights)
        stats = {}
        for name in ("lanczos", "chebyshev"):
            backend = get_backend(name)
            problem = EigenProblem(laplacian, t, seed=seed)
            result = backend.solve(problem)
            elapsed = _best_of(lambda: backend.solve(problem))
            stats[name] = {
                "seconds": elapsed,
                "matvecs": result.matvecs,
                "values": result.values,
            }
        rows.append({
            "label": label,
            "n": n,
            "t": t,
            "lanczos_ms": stats["lanczos"]["seconds"] * 1e3,
            "chebyshev_ms": stats["chebyshev"]["seconds"] * 1e3,
            "lanczos_matvecs": stats["lanczos"]["matvecs"],
            "chebyshev_matvecs": stats["chebyshev"]["matvecs"],
            "wall_ratio": stats["chebyshev"]["seconds"]
            / max(stats["lanczos"]["seconds"], 1e-12),
            "max_error": float(np.max(np.abs(
                stats["chebyshev"]["values"] - stats["lanczos"]["values"]
            ))),
        })
    return rows


def bench_ladder(n, seed=0, backends=("lanczos", "chebyshev")):
    """SGLA end-to-end: fixed-tolerance vs trust-region tolerance ladder.

    The ladder's claim is precision-for-free: coarse eigensolves while
    the trust radius is large, backend-default precision as it reaches
    ``eps``, and a final full-precision re-evaluation of the incumbent —
    same ``w*`` (gated at 1e-6), exact reported ``h(w*)``, strictly
    fewer matvecs.
    """
    mvag = generate_mvag(
        n_nodes=n,
        n_clusters=4,
        graph_view_strengths=[0.8, 0.3],
        attribute_view_dims=[32],
        avg_degree=12,
        seed=seed,
    )
    rows = []
    for backend in backends:
        fixed = SGLA(SGLAConfig(seed=seed, eigen_backend=backend)).fit(mvag)
        ladder = SGLA(
            SGLAConfig(seed=seed, eigen_backend=backend, tol_ladder=True)
        ).fit(mvag)
        fixed_mv = fixed.solver_stats.matvecs
        ladder_mv = ladder.solver_stats.matvecs
        rows.append({
            "backend": backend,
            "n": n,
            "fixed_matvecs": fixed_mv,
            "ladder_matvecs": ladder_mv,
            "matvec_reduction": 1.0 - ladder_mv / max(fixed_mv, 1),
            "fixed_s": fixed.elapsed_seconds,
            "ladder_s": ladder.elapsed_seconds,
            "coarse_solves": ladder.solver_stats.coarse_solves,
            "solves": ladder.solver_stats.solves,
            "delta_w": float(np.max(np.abs(fixed.weights - ladder.weights))),
            "delta_h": abs(fixed.objective_value - ladder.objective_value),
        })
    return rows


def run(smoke: bool = False, capsys=None, echo_json: bool = False) -> bool:
    """Run the benchmark matrix; returns True when all floors are met."""
    sizes = [800, 2000] if smoke else [800, 2000, 5000, 10000]
    backend_rows = bench_backends(sizes)
    backend_table = format_table(
        ["n", "backend", "solve (ms)", "max |dλ| vs ref"],
        [row[:4] for row in backend_rows],
        title="single-solve backend comparison (t=5 bottom eigenpairs)",
    )

    batch_cases = (
        [(2000, 8)] if smoke else [(2000, 8), (5000, 8), (10000, 12)]
    )
    batch_stats = [bench_batch(n, count) for n, count in batch_cases]
    batch_rows = [
        (
            s["n"],
            s["count"],
            s["sequential_s"],
            s["batch_s"],
            s["speedup"],
            s["sequential_matvecs"],
            s["batch_matvecs"],
        )
        for s in batch_stats
    ]
    batch_table = format_table(
        [
            "n",
            "solves",
            "sequential (s)",
            "batch (s)",
            "speedup",
            "seq matvecs",
            "batch matvecs",
        ],
        batch_rows,
        title="\nbatch backend vs sequential cold solves (nearby weight vectors)",
    )

    chebyshev_stats = bench_chebyshev(
        CHEBYSHEV_CONFIGS_SMOKE if smoke else CHEBYSHEV_CONFIGS
    )
    chebyshev_table = format_table(
        ["spectrum", "n", "t", "lanczos (ms)", "chebyshev (ms)",
         "lan mv", "cheb mv", "max |dλ|"],
        [
            (
                s["label"], s["n"], s["t"], s["lanczos_ms"],
                s["chebyshev_ms"], s["lanczos_matvecs"],
                s["chebyshev_matvecs"], f"{s['max_error']:.1e}",
            )
            for s in chebyshev_stats
        ],
        title="\nchebyshev vs lanczos cold solves by spectrum shape",
    )

    ladder_stats = bench_ladder(800 if smoke else 1200)
    ladder_table = format_table(
        ["backend", "fixed mv", "ladder mv", "reduction", "fixed (s)",
         "ladder (s)", "coarse/solves", "max |dw*|"],
        [
            (
                s["backend"], s["fixed_matvecs"], s["ladder_matvecs"],
                f"{s['matvec_reduction']:.0%}", s["fixed_s"], s["ladder_s"],
                f"{s['coarse_solves']}/{s['solves']}",
                f"{s['delta_w']:.1e}",
            )
            for s in ladder_stats
        ],
        title="\nSGLA tolerance ladder vs fixed-tolerance eigensolves",
    )

    name = "solvers" + ("_smoke" if smoke else "")
    emit(
        name,
        backend_table + "\n" + batch_table + "\n" + chebyshev_table
        + "\n" + ladder_table,
        capsys,
    )
    emit_json(
        name,
        {
            "mode": "smoke" if smoke else "full",
            "backends": [
                {
                    "n": n,
                    "backend": backend,
                    "solve_ms": elapsed,
                    "max_error": error,
                }
                for n, backend, elapsed, _, error in backend_rows
            ],
            "batch": batch_stats,
            "chebyshev_vs_lanczos": chebyshev_stats,
            "tolerance_ladder": ladder_stats,
        },
        echo=echo_json,
    )

    ok = True
    # The wall-clock margin on a single-core runner comes from warm-start
    # seeding alone (~1.1x) and sits inside shared-CI timing noise, so
    # smoke mode gates on the deterministic matvec reduction plus a
    # no-clear-regression wall-clock bound; full mode requires the strict
    # wall-clock win.
    floor = 0.85 if smoke else BATCH_FLOOR
    for stats in batch_stats:
        if stats["speedup"] <= floor:
            print(
                f"FAIL: batch backend not faster at n={stats['n']} "
                f"({stats['batch_s']:.3f}s vs {stats['sequential_s']:.3f}s)"
            )
            ok = False
        if stats["batch_matvecs"] >= stats["sequential_matvecs"]:
            print(
                f"FAIL: batch seeding saved no matvecs at n={stats['n']} "
                f"({stats['batch_matvecs']} vs {stats['sequential_matvecs']})"
            )
            ok = False
        if stats["max_error"] > 1e-8:
            print(
                f"FAIL: batch/sequential eigenvalue mismatch "
                f"{stats['max_error']:.2e} at n={stats['n']}"
            )
            ok = False
    # Bench-scale accuracy guard only: lobpcg's default iteration cap
    # bounds its last eigenpair near 1e-5 here; the strict 1e-8 parity is
    # enforced by tests/test_solvers.py on the running example.
    for n, name_, elapsed, _, error in backend_rows:
        if error is not None and error > 2e-5:
            print(f"FAIL: backend {name_} off by {error:.2e} at n={n}")
            ok = False
    for stats in chebyshev_stats:
        if stats["max_error"] > 1e-8:
            print(
                f"FAIL: chebyshev/lanczos eigenvalue mismatch "
                f"{stats['max_error']:.2e} on {stats['label']} "
                f"n={stats['n']}"
            )
            ok = False
    # Ladder gates are deterministic (solver-iteration counts, not wall
    # clock), so they hold in smoke mode too.
    for stats in ladder_stats:
        if stats["ladder_matvecs"] >= stats["fixed_matvecs"]:
            print(
                f"FAIL: tolerance ladder saved no matvecs on "
                f"{stats['backend']} ({stats['ladder_matvecs']} vs "
                f"{stats['fixed_matvecs']})"
            )
            ok = False
        if stats["delta_w"] > LADDER_DELTA_W:
            print(
                f"FAIL: ladder moved w* by {stats['delta_w']:.2e} on "
                f"{stats['backend']} (allowed {LADDER_DELTA_W:.0e})"
            )
            ok = False
    return ok


def test_solvers(benchmark, capsys):
    assert benchmark.pedantic(run, args=(False, capsys), rounds=1, iterations=1)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    echo_json = "--json" in sys.argv
    sys.exit(0 if run(smoke=smoke, echo_json=echo_json) else 1)
