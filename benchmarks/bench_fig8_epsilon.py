"""Fig. 8 — sensitivity of SGLA to the termination threshold eps.

Regenerates the eps sweep (1e-4 .. 1e-1): clustering accuracy per dataset
and the running-time change relative to the default eps = 1e-3.

Expected shape (paper): Acc stable for tight eps, degrading at loose
eps = 1e-1; time grows sharply at eps = 1e-4 with no quality gain.
"""

import time

from harness import bench_mvag, emit, format_table, profile_config
from repro.cluster.spectral import spectral_clustering
from repro.core.sgla import SGLA, SGLAConfig
from repro.evaluation.clustering_metrics import accuracy

DATASETS = ["rm", "yelp_small", "dblp_small", "amazon_photos_small"]
EPS_VALUES = [1e-4, 1e-3, 1e-2, 1e-1]
DEFAULT_EPS = 1e-3


def _sweep():
    results = {}
    for name in DATASETS:
        mvag = bench_mvag(name)
        base = profile_config(name)
        per_eps = {}
        for eps in EPS_VALUES:
            config = SGLAConfig(
                eps=eps, knn_k=base.knn_k, t_max=base.t_max
            )
            start = time.perf_counter()
            result = SGLA(config).fit(mvag)
            labels = spectral_clustering(
                result.laplacian, mvag.n_classes, seed=0
            )
            per_eps[eps] = {
                "acc": accuracy(mvag.labels, labels),
                "seconds": time.perf_counter() - start,
                "evals": result.n_objective_evaluations,
            }
        results[name] = per_eps
    return results


def test_fig8_epsilon(benchmark, capsys):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = []
    for name, per_eps in results.items():
        reference = per_eps[DEFAULT_EPS]["seconds"]
        for eps, cells in per_eps.items():
            delta = (cells["seconds"] - reference) / max(reference, 1e-9)
            rows.append(
                (name, f"{eps:.0e}", cells["acc"],
                 f"{100 * delta:+.0f}%", cells["evals"])
            )
    table = format_table(
        ["dataset", "eps", "Acc", "dTime vs 1e-3", "objective evals"],
        rows,
        title="Fig. 8 — varying eps for SGLA",
    )
    emit("fig8_epsilon", table, capsys)

    # Shape assertions: tightening eps from the default must not change
    # accuracy much, and must not reduce work.
    for name, per_eps in results.items():
        assert per_eps[1e-4]["acc"] >= per_eps[DEFAULT_EPS]["acc"] - 0.1
        assert per_eps[1e-4]["evals"] >= per_eps[1e-1]["evals"]
