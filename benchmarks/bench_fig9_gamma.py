"""Fig. 9 — sensitivity of SGLA+ to the regularization coefficient gamma.

Regenerates the gamma sweep (-2 .. 2): Acc and NMI per dataset.

Expected shape (paper): strongly negative gamma (which *rewards* collapsing
onto one view) hurts on datasets that need multiple views; quality is
stable on a plateau around the default gamma = 0.5.
"""

from harness import bench_mvag, emit, format_table, profile_config
from repro.cluster.spectral import spectral_clustering
from repro.core.sgla import SGLAConfig
from repro.core.sgla_plus import SGLAPlus
from repro.evaluation.clustering_metrics import (
    accuracy,
    normalized_mutual_information,
)

DATASETS = ["rm", "yelp_small", "imdb_small", "dblp_small"]
GAMMA_VALUES = [-2.0, -1.0, -0.5, 0.0, 0.5, 1.0, 2.0]


def _sweep():
    results = {}
    for name in DATASETS:
        mvag = bench_mvag(name)
        base = profile_config(name)
        per_gamma = {}
        for gamma in GAMMA_VALUES:
            config = SGLAConfig(gamma=gamma, knn_k=base.knn_k)
            result = SGLAPlus(config).fit(mvag)
            labels = spectral_clustering(
                result.laplacian, mvag.n_classes, seed=0
            )
            per_gamma[gamma] = {
                "acc": accuracy(mvag.labels, labels),
                "nmi": normalized_mutual_information(mvag.labels, labels),
                "max_weight": float(result.weights.max()),
            }
        results[name] = per_gamma
    return results


def test_fig9_gamma(benchmark, capsys):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = []
    for name, per_gamma in results.items():
        for gamma, cells in per_gamma.items():
            rows.append(
                (name, gamma, cells["acc"], cells["nmi"], cells["max_weight"])
            )
    table = format_table(
        ["dataset", "gamma", "Acc", "NMI", "max view weight"],
        rows,
        title="Fig. 9 — varying gamma for SGLA+",
    )
    emit("fig9_gamma", table, capsys)

    for name, per_gamma in results.items():
        # Negative gamma concentrates weight; positive gamma spreads it.
        assert (
            per_gamma[-2.0]["max_weight"]
            >= per_gamma[2.0]["max_weight"] - 1e-9
        )
        # The paper default must be competitive with the sweep's best.
        best_acc = max(cells["acc"] for cells in per_gamma.values())
        assert per_gamma[0.5]["acc"] >= best_acc - 0.25
