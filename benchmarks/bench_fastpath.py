"""Fast-path benchmark — per-evaluation aggregation and end-to-end solves.

Measures the two layers of the objective fast path (DESIGN.md §6):

1. **Aggregation**: legacy ``aggregate_laplacians`` (r sparse CSR adds per
   evaluation) versus ``StackedLaplacians.combine`` (one GEMV into a
   preallocated CSR).  Acceptance floor: >= 3x at r >= 4, n >= 5000.
2. **End-to-end**: SGLA and SGLA+ wall-clock on generator profiles with
   ``fast_path`` on versus off (cold-started legacy route), plus the
   eigensolve-count accounting of the batched ``objective_surface``.

Runs as a pytest benchmark (``pytest benchmarks/bench_fastpath.py``) or as
a plain script; ``python benchmarks/bench_fastpath.py --smoke`` executes a
reduced matrix suitable as a CI perf smoke check (exits nonzero if the
aggregation floor is missed).  Results are written under
``benchmarks/results/`` as both ``.txt`` tables and machine-readable
``.json`` (``--json`` echoes the JSON to stdout).
"""

from __future__ import annotations

import sys
import time
from pathlib import Path

# Importable both under pytest (benchmarks/conftest.py) and as a script.
sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np
import scipy.sparse as sp

from harness import emit, emit_json, format_table
from repro.core.fastpath import StackedLaplacians
from repro.core.laplacian import aggregate_laplacians, normalized_laplacian
from repro.core.objective import SpectralObjective, objective_surface
from repro.core.sgla import SGLA, SGLAConfig
from repro.core.sgla_plus import SGLAPlus
from repro.datasets.generator import generate_mvag

AGGREGATION_FLOOR = 3.0  # acceptance: stacked must beat legacy by >= 3x


def _random_laplacians(n, r, avg_degree=12, seed=0):
    rng = np.random.default_rng(seed)
    laplacians = []
    for _ in range(r):
        raw = sp.random(
            n, n, density=avg_degree / n, random_state=rng.integers(1 << 30)
        )
        raw = raw.maximum(raw.T)
        raw.setdiag(0)
        laplacians.append(normalized_laplacian(raw.tocsr()))
    return laplacians


def _simplex_points(r, count, seed=0):
    rng = np.random.default_rng(seed)
    points = rng.random((count, r))
    return points / points.sum(axis=1, keepdims=True)


def _time_per_call(func, points, min_repeats=3):
    start = time.perf_counter()
    repeats = 0
    while repeats < min_repeats or time.perf_counter() - start < 0.2:
        for weights in points:
            func(weights)
        repeats += 1
    return (time.perf_counter() - start) / (repeats * len(points))


def bench_aggregation(sizes, r=4, seed=0):
    """Per-evaluation L(w) build: legacy sparse adds vs stacked GEMV."""
    rows = []
    points = _simplex_points(r, 16, seed=seed)
    for n in sizes:
        laplacians = _random_laplacians(n, r, seed=seed)
        stack = StackedLaplacians(laplacians)
        legacy = _time_per_call(
            lambda w: aggregate_laplacians(laplacians, w), points
        )
        fast = _time_per_call(stack.combine, points)
        rows.append((n, r, legacy * 1e3, fast * 1e3, legacy / fast))
    return rows


def bench_end_to_end(profiles, seed=0):
    """SGLA / SGLA+ wall-clock, fast path on vs off, per generator profile."""
    rows = []
    for label, mvag in profiles:
        for solver_name, solver_cls in (("sgla", SGLA), ("sgla+", SGLAPlus)):
            timings = {}
            for fast_path in (False, True):
                config = SGLAConfig(seed=seed, fast_path=fast_path)
                start = time.perf_counter()
                result = solver_cls(config).fit(mvag)
                timings[fast_path] = time.perf_counter() - start
            rows.append(
                (
                    label,
                    solver_name,
                    timings[False],
                    timings[True],
                    timings[False] / max(timings[True], 1e-12),
                    result.n_objective_evaluations,
                )
            )
    return rows


def bench_surface(n=800, seed=0):
    """Batched surface sweep: eigensolves performed vs naive point count."""
    mvag = generate_mvag(
        n_nodes=n,
        n_clusters=3,
        graph_view_strengths=[0.8, 0.3],
        seed=seed,
    )
    from repro.core.laplacian import build_view_laplacians

    laplacians = build_view_laplacians(mvag)[:2]
    objective = SpectralObjective(laplacians, k=3, fast_path=True)
    start = time.perf_counter()
    surface = objective_surface(objective, resolution=0.1)
    elapsed = time.perf_counter() - start
    # Sweep again: every point is now cached, zero new eigensolves.
    resweep = objective_surface(objective, resolution=0.1)
    return {
        "points": len(surface["points"]),
        "first_solves": surface["n_eigensolves"],
        "first_saved": surface["n_eigensolves_saved"],
        "resweep_solves": resweep["n_eigensolves"],
        "seconds": elapsed,
    }


def run(smoke: bool = False, capsys=None, echo_json: bool = False) -> bool:
    """Run the benchmark matrix; returns True when all floors are met."""
    agg_sizes = [5000] if smoke else [2000, 5000, 10000, 20000]
    profiles = [
        (
            "gen_n1200_r3",
            generate_mvag(
                n_nodes=1200,
                n_clusters=4,
                graph_view_strengths=[0.8, 0.3],
                attribute_view_dims=[32],
                avg_degree=12,
                seed=3,
            ),
        )
    ]
    if not smoke:
        profiles.append(
            (
                "gen_n4000_r4",
                generate_mvag(
                    n_nodes=4000,
                    n_clusters=5,
                    graph_view_strengths=[0.8, 0.4, 0.2],
                    attribute_view_dims=[48],
                    avg_degree=14,
                    seed=4,
                ),
            )
        )

    agg_rows = bench_aggregation(agg_sizes, r=4)
    agg_table = format_table(
        ["n", "r", "legacy (ms)", "stacked (ms)", "speedup"],
        agg_rows,
        title="per-evaluation aggregation: r sparse adds vs one GEMV",
    )

    e2e_rows = bench_end_to_end(profiles)
    e2e_table = format_table(
        ["profile", "solver", "legacy (s)", "fast (s)", "speedup", "evals"],
        e2e_rows,
        title="\nend-to-end wall-clock: fast_path=False vs True",
    )

    surface_stats = bench_surface(n=700 if smoke else 1500)
    surface_text = (
        "\nbatched objective_surface: "
        f"{surface_stats['points']} grid points, "
        f"{surface_stats['first_solves']} eigensolves on first sweep "
        f"({surface_stats['first_saved']} saved), "
        f"{surface_stats['resweep_solves']} on re-sweep, "
        f"{surface_stats['seconds']:.2f}s"
    )

    name = "fastpath" + ("_smoke" if smoke else "")
    emit(name, agg_table + "\n" + e2e_table + surface_text, capsys)
    emit_json(
        name,
        {
            "mode": "smoke" if smoke else "full",
            "aggregation": [
                {
                    "n": n,
                    "r": r,
                    "legacy_ms": legacy,
                    "stacked_ms": fast,
                    "speedup": speedup,
                }
                for n, r, legacy, fast, speedup in agg_rows
            ],
            "end_to_end": [
                {
                    "profile": label,
                    "solver": solver_name,
                    "legacy_s": legacy,
                    "fast_s": fast,
                    "speedup": speedup,
                    "evaluations": evals,
                }
                for label, solver_name, legacy, fast, speedup, evals
                in e2e_rows
            ],
            "surface": surface_stats,
        },
        echo=echo_json,
    )

    ok = True
    for n, r, _, _, speedup in agg_rows:
        if n >= 5000 and r >= 4 and speedup < AGGREGATION_FLOOR:
            print(
                f"FAIL: aggregation speedup {speedup:.2f}x at n={n}, r={r} "
                f"below the {AGGREGATION_FLOOR}x floor"
            )
            ok = False
    # The end-to-end A/B margin (~1.1-1.3x) is within the timing noise of a
    # single fit on a shared CI runner, so smoke mode only gates on a clear
    # regression (fast path > 25% slower); full mode requires a strict win.
    slack = 1.25 if smoke else 1.0
    slower = [row for row in e2e_rows if row[3] >= row[2] * slack]
    for row in slower:
        print(
            f"FAIL: fast path not faster end-to-end on {row[0]}/{row[1]} "
            f"({row[3]:.2f}s vs {row[2]:.2f}s)"
        )
    ok = ok and not slower
    if surface_stats["resweep_solves"] != 0:
        print("FAIL: surface re-sweep performed eigensolves despite cache")
        ok = False
    return ok


def test_fastpath(benchmark, capsys):
    assert benchmark.pedantic(run, args=(False, capsys), rounds=1, iterations=1)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    echo_json = "--json" in sys.argv
    sys.exit(0 if run(smoke=smoke, echo_json=echo_json) else 1)
