"""Fig. 7 — convergence of SGLA: h(w) and clustering Acc vs iteration.

Regenerates the two convergence panels (Yelp and IMDB profiles): the
objective decreases then flattens, accuracy rises accordingly, and the
eps-termination point lands after the flattening — the justification for
``T_max = 50``.
"""

import numpy as np

from harness import bench_mvag, emit, profile_config
from repro.analysis.convergence import convergence_trace
from repro.core.laplacian import build_view_laplacians
from repro.core.sgla import SGLA

DATASETS = ["yelp_small", "imdb_small"]


def _traces():
    traces = {}
    for name in DATASETS:
        mvag = bench_mvag(name)
        config = profile_config(name)
        result = SGLA(config).fit(mvag)
        laplacians = build_view_laplacians(mvag, knn_k=config.knn_k)
        traces[name] = convergence_trace(
            result.history,
            laplacians=laplacians,
            k=mvag.n_classes,
            labels_true=mvag.labels,
            accuracy_stride=3,
        )
    return traces


def test_fig7_convergence(benchmark, capsys):
    traces = benchmark.pedantic(_traces, rounds=1, iterations=1)
    blocks = []
    for name, trace in traces.items():
        lines = [f"[{name}] termination at t={trace.termination_iteration}"]
        lines.append(f"{'t':>4s} {'h(w)':>8s} {'Acc':>6s}")
        for i in range(0, len(trace.iterations), 3):
            lines.append(
                f"{trace.iterations[i]:4d} {trace.objective[i]:8.4f} "
                f"{trace.accuracy[i]:6.3f}"
            )
        blocks.append("\n".join(lines))
    emit(
        "fig7_convergence",
        "Fig. 7 — SGLA convergence (objective down, accuracy up)\n\n"
        + "\n\n".join(blocks),
        capsys,
    )

    for name, trace in traces.items():
        # Objective is non-increasing (running best) and actually improves.
        assert np.all(np.diff(trace.objective) <= 1e-12)
        assert trace.objective[-1] <= trace.objective[0]
        # Accuracy at the end is at least as good as at the start.
        assert trace.accuracy[-1] >= trace.accuracy[0] - 0.05
        # Termination (plateau start) happens within the budget.
        assert trace.termination_iteration <= len(trace.iterations)
