"""Table IV — embedding quality: node classification Macro/Micro-F1.

Regenerates the paper's embedding table: each method embeds every dataset
into 64 dimensions, a logistic-regression classifier is trained on the
profile's label fraction (20%, or 1% for MAG-style profiles), and
Macro-F1 / Micro-F1 are reported with the overall-rank column.

Expected shape (paper): SGLA and SGLA+ take the top two overall ranks.
"""

from harness import (
    BENCH_DATASETS,
    bench_mvag,
    emit,
    embedding_methods,
    format_table,
    run_embedding,
)
from repro.datasets.profiles import dataset_profile
from repro.evaluation.classification import evaluate_embedding
from repro.evaluation.ranking import overall_ranks

DIM = 64


def _full_table():
    table = {}
    for method in embedding_methods():
        table[method] = {}
        for dataset in BENCH_DATASETS:
            embedding, _ = run_embedding(method, dataset, dim=DIM, seed=0)
            if embedding is None:
                table[method][dataset] = {"macro_f1": None, "micro_f1": None}
                continue
            mvag = bench_mvag(dataset)
            fraction = dataset_profile(dataset).train_fraction
            table[method][dataset] = evaluate_embedding(
                embedding, mvag.labels, train_fraction=fraction, seed=0
            )
    return table


def test_table4_embedding_quality(benchmark, capsys):
    table = benchmark.pedantic(_full_table, rounds=1, iterations=1)
    ranks = overall_ranks(table)

    methods = list(embedding_methods())
    header = ["method"]
    for dataset in BENCH_DATASETS:
        header.extend([f"{dataset}:MaF1", f"{dataset}:MiF1"])
    rows = []
    for method in methods:
        row = [method]
        for dataset in BENCH_DATASETS:
            cells = table[method][dataset]
            row.extend([cells["macro_f1"], cells["micro_f1"]])
        rows.append(row)
    main_table = format_table(
        header, rows, title="Table IV — node classification from embeddings"
    )
    rank_rows = sorted(ranks.items(), key=lambda kv: kv[1])
    rank_table = format_table(
        ["method", "overall rank"],
        rank_rows,
        title="\n[overall rank — lower is better]",
    )
    emit("table4_embedding", main_table + "\n" + rank_table, capsys)

    # Shape assertions: the SGLA family leads the ranks.
    ordered = [m for m, _ in rank_rows]
    assert set(ordered[:2]) & {"sgla", "sgla+"}, (
        f"SGLA family should lead embedding ranks, got {ordered[:2]}"
    )
