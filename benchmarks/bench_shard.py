"""Process-sharded serving benchmark (DESIGN.md §10).

Measures the two sharded workloads against their in-process serial
execution on one multi-view problem:

* **view builds** — ``build_view_laplacians`` (graph normalization +
  exact attribute KNN builds) serial vs ``shard_workers=4``;
* **SGLA+ weight-batch eigensolves** — a batch of ``L(w)`` bottom-``t``
  solves through ``shard_objective_batch`` serial vs sharded;
* **end to end** — ``cluster_mvag`` (SGLA+) at ``shard_workers=1`` vs
  ``shard_workers=4``.

Acceptance gates:

* **bit-identity always**: sharded view Laplacians, eigenvalue batches,
  ``w*`` and labels must equal the serial-shard execution *bitwise* at
  every worker count — this is the subsystem's determinism contract and
  it gates in both modes, including end-to-end through the CLI in smoke
  mode (``--shard-workers 2`` vs ``--shard-workers 1``);
* **speedup >= 1.5x** on the view-build and batch-eigensolve sections in
  full mode — enforced only on hosts with >= 2 cores.  Process sharding
  cannot beat serial execution on a single core (the committed results
  record the host core count; on a 1-core container the sections
  honestly report <= 1x and the speed gate records itself as skipped).

Runs as a plain script (``--smoke`` for the CI leg, ``--json`` to echo
the machine-readable results always written under
``benchmarks/results/``).
"""

from __future__ import annotations

import contextlib
import io
import os
import sys
import tempfile
import time
from pathlib import Path

# Importable both under pytest (benchmarks/conftest.py) and as a script.
sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np

from harness import emit, emit_json, format_table
from repro.core.fastpath import StackedLaplacians
from repro.core.laplacian import build_view_laplacians
from repro.core.pipeline import cluster_mvag
from repro.core.sgla import SGLAConfig
from repro.datasets.generator import generate_mvag
from repro.evaluation.clustering_metrics import clustering_report
from repro.shard import ShardContext, shard_objective_batch, shard_view_laplacians
from repro.solvers import SolverContext

SPEEDUP_FLOOR = 1.5
SHARD_WORKERS = 4

#: full-mode problem size (the ISSUE's n ~= 10k operating point).
FULL_N = 10_000
SMOKE_N = 2_000

#: weight rows in the batch-eigensolve section (an SGLA+ sample stage
#: plus safeguard candidates' worth of solves).
BATCH_ROWS = 8


def bench_mvag(n: int, seed: int = 0):
    """3 well-separated clusters, 1 graph view + 2 attribute views."""
    return generate_mvag(
        n_nodes=n,
        n_clusters=3,
        graph_view_strengths=[0.85],
        attribute_view_dims=[64, 64],
        attribute_view_signals=[0.8, 0.7],
        seed=seed,
    )


def _timed(func, repeats: int):
    best, result = np.inf, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


def _csr_equal(a, b) -> bool:
    return (a != b).nnz == 0


def bench_view_builds(mvag, repeats: int) -> dict:
    """Serial vs sharded multi-view Laplacian construction."""
    serial_seconds, serial_laps = _timed(
        lambda: build_view_laplacians(mvag, knn_k=10), repeats
    )
    with ShardContext(workers=SHARD_WORKERS) as shard:
        sharded_seconds, sharded_laps = _timed(
            lambda: shard_view_laplacians(mvag, shard, knn_k=10), repeats
        )
        dispatched = shard.stats.dispatches > 0
    identical = all(
        _csr_equal(ours, theirs)
        for ours, theirs in zip(sharded_laps, serial_laps)
    )
    return {
        "section": "view-builds",
        "serial_seconds": serial_seconds,
        "sharded_seconds": sharded_seconds,
        "speedup": serial_seconds / max(sharded_seconds, 1e-12),
        "bit_identical": identical,
        "dispatched": dispatched,
    }


def bench_batch_eigensolves(mvag, repeats: int) -> dict:
    """Serial-shard vs process-shard weight-batch eigensolves."""
    stack = StackedLaplacians(build_view_laplacians(mvag, knn_k=10))
    rng = np.random.default_rng(7)
    raw = rng.random((BATCH_ROWS, stack.r))
    rows = raw / raw.sum(axis=1, keepdims=True)
    t = 4

    def run(workers: int):
        solver = SolverContext(method="lanczos", seed=0)
        with ShardContext(workers=workers) as shard:
            values = shard_objective_batch(
                stack, rows, t, "lanczos", solver, shard
            )
            dispatched = shard.stats.dispatches > 0
        return values, solver.stats.matvecs, dispatched

    serial_seconds, (serial_values, serial_matvecs, _) = _timed(
        lambda: run(1), repeats
    )
    sharded_seconds, (sharded_values, sharded_matvecs, dispatched) = _timed(
        lambda: run(SHARD_WORKERS), repeats
    )
    identical = all(
        np.array_equal(ours, theirs)
        for ours, theirs in zip(sharded_values, serial_values)
    )
    return {
        "section": "batch-eigensolves",
        "serial_seconds": serial_seconds,
        "sharded_seconds": sharded_seconds,
        "speedup": serial_seconds / max(sharded_seconds, 1e-12),
        "bit_identical": identical and serial_matvecs == sharded_matvecs,
        "dispatched": dispatched,
        "batch_rows": BATCH_ROWS,
        "matvecs": sharded_matvecs,
    }


def bench_end_to_end(mvag) -> dict:
    """cluster_mvag at shard_workers=1 vs 4: identity + wall clock."""
    def run(workers: int):
        config = SGLAConfig(shard_workers=workers)
        return cluster_mvag(mvag, method="sgla+", config=config)

    serial_seconds, serial_out = _timed(lambda: run(1), 1)
    sharded_seconds, sharded_out = _timed(lambda: run(SHARD_WORKERS), 1)
    report = clustering_report(mvag.labels, sharded_out.labels)
    return {
        "section": "end-to-end",
        "serial_seconds": serial_seconds,
        "sharded_seconds": sharded_seconds,
        "speedup": serial_seconds / max(sharded_seconds, 1e-12),
        "bit_identical": bool(
            np.array_equal(
                serial_out.integration.weights,
                sharded_out.integration.weights,
            )
            and np.array_equal(serial_out.labels, sharded_out.labels)
        ),
        "dispatched": True,
        "ari_vs_truth": report["ari"],
    }


def bench_cli_identity(n: int) -> dict:
    """Drive --shard-workers end-to-end through the CLI.

    Saves the benchmark MVAG, clusters it twice (``--shard-workers 1``
    vs ``--shard-workers 2``), and gates on byte-identical label files
    and identical reported view weights.
    """
    from repro.cli import main
    from repro.datasets.io import save_mvag

    mvag = bench_mvag(n, seed=1)
    outputs = {}
    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "shard_bench.npz")
        save_mvag(mvag, path)
        for workers in (1, 2):
            labels_path = str(Path(tmp) / f"labels_{workers}.npy")
            buffer = io.StringIO()
            with contextlib.redirect_stdout(buffer):
                code = main([
                    "cluster", path, "--method", "sgla+",
                    "--shard-workers", str(workers),
                    "--out", labels_path,
                ])
            weights_line = next(
                (line for line in buffer.getvalue().splitlines()
                 if line.startswith("view weights:")),
                "",
            )
            outputs[workers] = {
                "exit_code": code,
                "weights_line": weights_line,
                "labels": np.load(labels_path),
            }
    return {
        "exit_codes": [outputs[1]["exit_code"], outputs[2]["exit_code"]],
        "labels_identical": bool(
            np.array_equal(outputs[1]["labels"], outputs[2]["labels"])
        ),
        "weights_line_identical": (
            outputs[1]["weights_line"] == outputs[2]["weights_line"]
            and outputs[1]["weights_line"] != ""
        ),
        "weights_line": outputs[1]["weights_line"],
    }


def run(smoke: bool = False, capsys=None, echo_json: bool = False) -> bool:
    n = SMOKE_N if smoke else FULL_N
    repeats = 1 if not smoke else 2
    host_cpus = os.cpu_count() or 1
    mvag = bench_mvag(n)

    sections = [
        bench_view_builds(mvag, repeats),
        bench_batch_eigensolves(mvag, repeats),
        bench_end_to_end(mvag),
    ]
    cli = bench_cli_identity(SMOKE_N) if smoke else None

    table = format_table(
        ["section", "serial (s)", f"shard x{SHARD_WORKERS} (s)", "speedup",
         "bit-identical", "dispatched"],
        [
            (
                row["section"],
                row["serial_seconds"],
                row["sharded_seconds"],
                f"{row['speedup']:.2f}x",
                "yes" if row["bit_identical"] else "NO",
                "yes" if row["dispatched"] else "serial-fallback",
            )
            for row in sections
        ],
        title=(
            f"Process-sharded serving vs serial (n={n}, r=3 views, "
            f"shard_workers={SHARD_WORKERS}, host cores={host_cpus})"
        ),
    )
    text = table
    if host_cpus < 2:
        text += (
            "\n\nNOTE: single-core host — process sharding cannot beat "
            "serial execution here; the speed gate is skipped and the "
            "numbers above measure pure dispatch overhead.  The identity "
            "gates (the determinism contract) are enforced regardless."
        )
    if cli is not None:
        text += (
            f"\n\nCLI end-to-end identity (--shard-workers 1 vs 2): "
            f"labels {'identical' if cli['labels_identical'] else 'DIFFER'}"
            f", {cli['weights_line']}"
        )

    name = "shard" + ("_smoke" if smoke else "")
    emit(name, text, capsys)
    speed_gate_active = (not smoke) and host_cpus >= 2
    payload = {
        "mode": "smoke" if smoke else "full",
        "host": {"cpu_count": host_cpus},
        "config": {
            "n": n,
            "views": 3,
            "shard_workers": SHARD_WORKERS,
            "batch_rows": BATCH_ROWS,
        },
        "gates": {
            "bit_identity": True,
            "speedup_floor": SPEEDUP_FLOOR,
            "speed_gate_active": speed_gate_active,
            "speed_gate_skipped_single_core": (
                (not smoke) and host_cpus < 2
            ),
        },
        "sections": sections,
    }
    if cli is not None:
        payload["cli_identity"] = {
            key: value for key, value in cli.items() if key != "labels"
        }
    emit_json(name, payload, echo=echo_json)

    ok = True
    for row in sections:
        if not row["bit_identical"]:
            print(f"FAIL: {row['section']} sharded output not bit-identical")
            ok = False
        if speed_gate_active and row["section"] != "end-to-end" and (
            row["speedup"] < SPEEDUP_FLOOR
        ):
            print(
                f"FAIL: {row['section']} speedup {row['speedup']:.2f}x "
                f"below {SPEEDUP_FLOOR}x on a {host_cpus}-core host"
            )
            ok = False
    if cli is not None:
        if cli["exit_codes"] != [0, 0]:
            print("FAIL: CLI sharded run exited nonzero")
            ok = False
        if not cli["labels_identical"] or not cli["weights_line_identical"]:
            print("FAIL: CLI sharded vs serial output not identical")
            ok = False
    return ok


def test_shard(benchmark, capsys):
    assert benchmark.pedantic(run, args=(False, capsys), rounds=1, iterations=1)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    echo_json = "--json" in sys.argv
    sys.exit(0 if run(smoke=smoke, echo_json=echo_json) else 1)
