"""Fig. 5 — clustering running time of all methods on all datasets.

Regenerates the running-time comparison: wall-clock seconds per method and
dataset (``-`` for OOM), plus a node-count scaling sweep that makes the
quadratic-vs-linear separation visible (the paper shows it via the MAG-*
datasets, which we scale down; the sweep restores the asymptote).

Expected shape (paper): SGLA+ < SGLA everywhere; both are orders of
magnitude faster than the consensus-graph (MCGC/MAGC/2CMV) and trained
(O2MAC) baselines at scale.
"""

import numpy as np

from harness import (
    BENCH_DATASETS,
    clustering_methods,
    emit,
    format_table,
    run_clustering,
)
from repro.analysis.memory import peak_rss_mb
from repro.baselines.mcgc import mcgc_cluster
from repro.core.pipeline import cluster_mvag
from repro.datasets.generator import generate_mvag

SCALING_SIZES = [500, 1000, 2000, 4000]

# The mid-tier MAG profiles sit above the quadratic/GNN baselines' memory
# caps, reproducing the paper's '-' cells on the MAG columns.
TIME_DATASETS = BENCH_DATASETS + ["mag_eng_mid", "mag_phy_mid"]


def _time_table():
    rows = {}
    for method in clustering_methods():
        rows[method] = {}
        for dataset in TIME_DATASETS:
            _, seconds = run_clustering(method, dataset, seed=0)
            rows[method][dataset] = seconds
    return rows


def _scaling_sweep():
    import time

    sweep = []
    for n in SCALING_SIZES:
        mvag = generate_mvag(
            n_nodes=n,
            n_clusters=5,
            graph_view_strengths=[0.8, 0.3],
            attribute_view_dims=[48],
            avg_degree=12,
            seed=1,
        )
        start = time.perf_counter()
        cluster_mvag(mvag, method="sgla+", seed=0)
        plus_seconds = time.perf_counter() - start
        start = time.perf_counter()
        mcgc_cluster(mvag, 5, seed=0)
        quadratic_seconds = time.perf_counter() - start
        sweep.append((n, plus_seconds, quadratic_seconds))
    return sweep


def test_fig5_clustering_time(benchmark, capsys):
    times = benchmark.pedantic(_time_table, rounds=1, iterations=1)
    sweep = _scaling_sweep()

    methods = list(clustering_methods())
    rows = [
        [method] + [times[method][d] for d in TIME_DATASETS]
        for method in methods
    ]
    table = format_table(
        ["method"] + TIME_DATASETS, rows,
        title="Fig. 5 — clustering time in seconds ('-' = OOM guard)",
    )
    sweep_table = format_table(
        ["n", "sgla+ (s)", "mcgc/quadratic (s)"],
        sweep,
        title="\nscaling sweep (restores the paper's large-n separation)",
    )
    memory = f"\npeak RSS after all runs: {peak_rss_mb():.0f} MB"
    emit("fig5_clustering_time", table + "\n" + sweep_table + memory, capsys)

    # Shape assertions.
    sgla_total = np.nansum([times["sgla"][d] for d in TIME_DATASETS])
    plus_total = np.nansum([times["sgla+"][d] for d in TIME_DATASETS])
    assert plus_total < sgla_total, "SGLA+ must be faster than SGLA overall"
    # The paper's '-' cells: quadratic/GNN baselines cannot process the
    # MAG-scale datasets while SGLA/SGLA+ can.
    for method in ("mcgc", "magc", "2cmv", "o2mac"):
        assert np.isnan(times[method]["mag_eng_mid"]), method
    assert np.isfinite(times["sgla+"]["mag_eng_mid"])
    assert np.isfinite(times["sgla"]["mag_phy_mid"])
    # The quadratic method's growth factor must exceed SGLA+'s.
    plus_growth = sweep[-1][1] / max(sweep[0][1], 1e-9)
    quad_growth = sweep[-1][2] / max(sweep[0][2], 1e-9)
    assert quad_growth > plus_growth, (
        f"quadratic baseline should scale worse "
        f"({quad_growth:.1f}x vs {plus_growth:.1f}x)"
    )
