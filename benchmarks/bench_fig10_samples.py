"""Fig. 10 — varying the number of weight-vector samples in SGLA+.

Regenerates the delta-s sweep ({-2, -1, 0, +2, +5, +10, +20} around the
default r + 1 samples): Acc, NMI, and running time per dataset.

Expected shape (paper): quality rises from delta_s = -2 to 0 and saturates
afterwards, while time grows with extra samples — i.e. r + 1 samples are
sufficient in practice.
"""

import time

from harness import bench_mvag, emit, format_table, profile_config
from repro.cluster.spectral import spectral_clustering
from repro.core.sgla_plus import SGLAPlus
from repro.evaluation.clustering_metrics import (
    accuracy,
    normalized_mutual_information,
)

DATASETS = ["yelp_small", "imdb_small", "dblp_small", "amazon_computers_small"]
DELTAS = [-2, -1, 0, 2, 5, 10, 20]


def _sweep():
    results = {}
    for name in DATASETS:
        mvag = bench_mvag(name)
        config = profile_config(name)
        per_delta = {}
        for delta in DELTAS:
            start = time.perf_counter()
            result = SGLAPlus(config).fit(mvag, delta_samples=delta)
            labels = spectral_clustering(
                result.laplacian, mvag.n_classes, seed=0
            )
            per_delta[delta] = {
                "acc": accuracy(mvag.labels, labels),
                "nmi": normalized_mutual_information(mvag.labels, labels),
                "seconds": time.perf_counter() - start,
                "evals": result.n_objective_evaluations,
            }
        results[name] = per_delta
    return results


def test_fig10_samples(benchmark, capsys):
    results = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    rows = []
    for name, per_delta in results.items():
        for delta, cells in per_delta.items():
            rows.append(
                (name, f"{delta:+d}", cells["acc"], cells["nmi"],
                 cells["seconds"], cells["evals"])
            )
    table = format_table(
        ["dataset", "delta_s", "Acc", "NMI", "time (s)", "objective evals"],
        rows,
        title="Fig. 10 — varying the number of weight-vector samples",
    )
    emit("fig10_samples", table, capsys)

    for name, per_delta in results.items():
        # More samples means more expensive objective evaluations.
        assert per_delta[20]["evals"] > per_delta[0]["evals"]
        # Quality at the default must be within reach of the sweep's best
        # (the saturation claim).
        best_acc = max(cells["acc"] for cells in per_delta.values())
        assert per_delta[0]["acc"] >= best_acc - 0.25
