"""Fig. 6 — embedding running time of all methods on all datasets.

Regenerates the embedding-efficiency comparison (wall-clock seconds; ``-``
for OOM guards), plus a scaling sweep comparing the SketchNE-style scalable
path against the trained auto-encoder family.

Expected shape (paper): SGLA+ fastest overall; SGLA close behind; the
trained (GNN-family) baseline slowest by a wide margin.
"""

import time

import numpy as np

from harness import (
    BENCH_DATASETS,
    embedding_methods,
    emit,
    format_table,
    run_embedding,
)
from repro.analysis.memory import peak_rss_mb
from repro.core.pipeline import embed_mvag
from repro.datasets.generator import generate_mvag

SCALING_SIZES = [500, 1000, 2000, 4000]


def _time_table():
    rows = {}
    for method in embedding_methods():
        rows[method] = {}
        for dataset in BENCH_DATASETS:
            _, seconds = run_embedding(method, dataset, dim=64, seed=0)
            rows[method][dataset] = seconds
    return rows


def _scaling_sweep():
    sweep = []
    for n in SCALING_SIZES:
        mvag = generate_mvag(
            n_nodes=n,
            n_clusters=5,
            graph_view_strengths=[0.8, 0.3],
            attribute_view_dims=[48],
            avg_degree=12,
            seed=1,
        )
        start = time.perf_counter()
        embed_mvag(mvag, dim=64, method="sgla+", backend="sketchne", seed=0)
        sketch_seconds = time.perf_counter() - start
        sweep.append((n, sketch_seconds))
    return sweep


def test_fig6_embedding_time(benchmark, capsys):
    times = benchmark.pedantic(_time_table, rounds=1, iterations=1)
    sweep = _scaling_sweep()

    methods = list(embedding_methods())
    rows = [
        [method] + [times[method][d] for d in BENCH_DATASETS]
        for method in methods
    ]
    table = format_table(
        ["method"] + BENCH_DATASETS, rows,
        title="Fig. 6 — embedding time in seconds ('-' = OOM guard)",
    )
    sweep_table = format_table(
        ["n", "sgla+ / sketchne (s)"],
        sweep,
        title="\nscalable-path sweep",
    )
    memory = f"\npeak RSS after all runs: {peak_rss_mb():.0f} MB"
    emit("fig6_embedding_time", table + "\n" + sweep_table + memory, capsys)

    # Shape assertions.
    plus_total = np.nansum([times["sgla+"][d] for d in BENCH_DATASETS])
    o2mac_total = np.nansum([times["o2mac"][d] for d in BENCH_DATASETS])
    assert plus_total < o2mac_total, (
        "SGLA+ must beat the trained GNN-family baseline on total time"
    )
    # The scalable path must stay sub-quadratic across the sweep.
    growth = sweep[-1][1] / max(sweep[0][1], 1e-9)
    size_ratio = SCALING_SIZES[-1] / SCALING_SIZES[0]
    assert growth < size_ratio**2
