"""Chaos benchmark: the resilience subsystem under injected faults
(DESIGN.md §11).

Drives full SGLA+ runs through the ``process`` and ``remote`` shard
backends while a seeded :class:`repro.shard.FaultPlan` injects crash /
slow / corrupt / drop faults at a combined ~25% task rate, and gates on
the subsystem's core promise:

* **bit-identity** — ``w*`` and labels under chaos equal the fault-free
  run exactly, on both backends (failure handling is invisible in the
  output);
* **completion without degradation** — every fault is absorbed by
  retry / re-dispatch / respawn (``failures == 0``,
  ``degradations == 0``), and faults demonstrably fired
  (``retries >= 1``);
* **ladder degradation** — with every remote worker killed and respawn
  disabled (plus faults armed on the process rung), a dispatch walks
  ``remote -> process -> serial`` and still returns correct results;
* **CLI surfacing** (smoke mode) — ``--shard-backend remote`` completes
  through the CLI with labels identical to the process backend, and the
  ``shard:`` stats line reports the resilience counters.

Runs as a plain script (``--smoke`` for the CI leg, ``--json`` to echo
the machine-readable results always written under
``benchmarks/results/``).
"""

from __future__ import annotations

import contextlib
import io
import os
import sys
import tempfile
import time
import warnings
from pathlib import Path

# Importable both under pytest (benchmarks/conftest.py) and as a script.
sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np

from harness import emit, emit_json, format_table
from repro.core.laplacian import build_view_laplacians
from repro.core.pipeline import cluster_mvag
from repro.core.sgla import SGLAConfig
from repro.datasets.generator import generate_mvag
from repro.shard import FaultPlan, ShardContext, ShardDegradation

FULL_N = 4_000
SMOKE_N = 800
SHARD_WORKERS = 2

#: combined 25% fault rate across every transport-visible kind.
CHAOS_PLAN = FaultPlan(
    seed=2,
    crash_rate=0.10,
    slow_rate=0.05,
    corrupt_rate=0.05,
    drop_rate=0.05,
    slow_seconds=0.01,
)


def bench_mvag(n: int, seed: int = 0):
    return generate_mvag(
        n_nodes=n,
        n_clusters=3,
        graph_view_strengths=[0.85],
        attribute_view_dims=[48, 32],
        attribute_view_signals=[0.8, 0.7],
        seed=seed,
    )


def _chaos_context(backend: str) -> ShardContext:
    return ShardContext(
        workers=SHARD_WORKERS,
        backend=backend,
        min_items=0,
        min_bytes=0,
        timeout=120.0,
        fault_plan=CHAOS_PLAN,
        quarantine_after=10,  # the gate demands zero degradations
    )


def bench_backend_chaos(mvag, reference, backend: str) -> dict:
    """One full SGLA+ run under chaos on ``backend``, gated on identity."""
    start = time.perf_counter()
    with _chaos_context(backend) as shard:
        chaos = cluster_mvag(
            mvag, method="sgla+", config=SGLAConfig(), shard=shard
        )
        stats = shard.stats
    seconds = time.perf_counter() - start
    return {
        "section": f"{backend}-chaos",
        "seconds": seconds,
        "bit_identical": bool(
            np.array_equal(
                chaos.integration.weights,
                reference.integration.weights,
            )
            and np.array_equal(chaos.labels, reference.labels)
        ),
        "completed_clean": stats.failures == 0 and stats.degradations == 0,
        "faults_fired": stats.retries >= 1,
        "retries": stats.retries,
        "redispatches": stats.redispatches,
        "workers_quarantined": stats.workers_quarantined,
        "stats_line": stats.summary(),
    }


def bench_dead_fleet_ladder(mvag) -> dict:
    """Kill every remote worker mid-run: the ladder must land on serial."""
    plain = build_view_laplacians(mvag, knn_k=10)
    start = time.perf_counter()
    with ShardContext(
        workers=SHARD_WORKERS,
        backend="remote",
        min_items=0,
        min_bytes=0,
        timeout=30.0,
        retries=0,
        remote_respawn=False,
        quarantine_cooldown=600.0,
    ) as shard:
        healthy = build_view_laplacians(mvag, knn_k=10, shard=shard)
        shard.remote_fleet().kill_all()
        # Arm faults on the process rung so the walk reaches serial:
        # items arrive there with one failed (remote) attempt behind
        # them, crash at attempt 1, and run clean at attempt 2.
        shard.director.fault_plan = FaultPlan(
            seed=0, crash_rate=1.0, max_faulted_attempts=2
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            degraded = build_view_laplacians(mvag, knn_k=10, shard=shard)
        rungs = [
            str(w.message).split("degrading to ")[1].split(" ")[0]
            for w in caught
            if w.category is ShardDegradation
        ]
        landed = shard.director.effective_backend("remote")
        stats = shard.stats
    seconds = time.perf_counter() - start
    identical = all(
        (ours != theirs).nnz == 0
        for ours, theirs in zip(healthy, plain)
    ) and all(
        (ours != theirs).nnz == 0
        for ours, theirs in zip(degraded, plain)
    )
    return {
        "section": "dead-fleet-ladder",
        "seconds": seconds,
        "bit_identical": identical,
        "completed_clean": stats.failures == 0,
        "landed_on_serial": landed == "serial",
        "degradation_path": rungs,
        "degradations": stats.degradations,
        "stats_line": stats.summary(),
    }


def bench_cli_chaos(n: int) -> dict:
    """Remote backend through the CLI vs process, with stats surfaced."""
    from repro.cli import main
    from repro.datasets.io import save_mvag

    mvag = bench_mvag(n, seed=1)
    outputs = {}
    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "chaos_bench.npz")
        save_mvag(mvag, path)
        for backend in ("process", "remote"):
            labels_path = str(Path(tmp) / f"labels_{backend}.npy")
            buffer = io.StringIO()
            with contextlib.redirect_stdout(buffer):
                code = main([
                    "cluster", path, "--method", "sgla+",
                    "--shard-workers", str(SHARD_WORKERS),
                    "--shard-backend", backend,
                    "--shard-retries", "2",
                    "--shard-deadline", "120",
                    "--out", labels_path,
                ])
            shard_line = next(
                (line for line in buffer.getvalue().splitlines()
                 if line.startswith("shard:")),
                "",
            )
            outputs[backend] = {
                "exit_code": code,
                "shard_line": shard_line,
                "labels": np.load(labels_path),
            }
    return {
        "exit_codes": [
            outputs["process"]["exit_code"], outputs["remote"]["exit_code"]
        ],
        "labels_identical": bool(np.array_equal(
            outputs["process"]["labels"], outputs["remote"]["labels"]
        )),
        "stats_surfaced": outputs["remote"]["shard_line"].startswith(
            "shard:"
        ),
        "remote_shard_line": outputs["remote"]["shard_line"],
    }


def run(smoke: bool = False, capsys=None, echo_json: bool = False) -> bool:
    n = SMOKE_N if smoke else FULL_N
    host_cpus = os.cpu_count() or 1
    mvag = bench_mvag(n)

    with ShardContext(
        workers=SHARD_WORKERS, min_items=0, min_bytes=0
    ) as shard:
        reference = cluster_mvag(
            mvag, method="sgla+", config=SGLAConfig(), shard=shard
        )

    sections = [
        bench_backend_chaos(mvag, reference, "process"),
        bench_backend_chaos(mvag, reference, "remote"),
        bench_dead_fleet_ladder(mvag),
    ]
    cli = bench_cli_chaos(SMOKE_N) if smoke else None

    table = format_table(
        ["section", "seconds", "bit-identical", "clean", "detail"],
        [
            (
                row["section"],
                row["seconds"],
                "yes" if row["bit_identical"] else "NO",
                "yes" if row["completed_clean"] else "NO",
                row.get(
                    "degradation_path",
                    f"{row.get('retries', 0)} retries/"
                    f"{row.get('redispatches', 0)} redispatched",
                ),
            )
            for row in sections
        ],
        title=(
            f"Chaos gate: SGLA+ under {CHAOS_PLAN.describe()} "
            f"(n={n}, shard_workers={SHARD_WORKERS}, "
            f"host cores={host_cpus})"
        ),
    )
    text = table
    if cli is not None:
        text += (
            f"\n\nCLI remote vs process (--shard-backend): labels "
            f"{'identical' if cli['labels_identical'] else 'DIFFER'}\n"
            f"{cli['remote_shard_line']}"
        )

    name = "chaos" + ("_smoke" if smoke else "")
    emit(name, text, capsys)
    payload = {
        "mode": "smoke" if smoke else "full",
        "host": {"cpu_count": host_cpus},
        "config": {
            "n": n,
            "shard_workers": SHARD_WORKERS,
            "fault_plan": CHAOS_PLAN.describe(),
            "total_fault_rate": CHAOS_PLAN.total_rate,
        },
        "gates": {
            "bit_identity": True,
            "completion_without_degradation": True,
            "ladder_lands_on_serial": True,
        },
        "sections": sections,
    }
    if cli is not None:
        payload["cli_chaos"] = {
            key: value for key, value in cli.items() if key != "labels"
        }
    emit_json(name, payload, echo=echo_json)

    ok = True
    for row in sections:
        if not row["bit_identical"]:
            print(f"FAIL: {row['section']} output not bit-identical")
            ok = False
        if not row["completed_clean"]:
            print(f"FAIL: {row['section']} did not complete cleanly")
            ok = False
        if row["section"].endswith("-chaos") and not row["faults_fired"]:
            print(f"FAIL: {row['section']} injected no faults (dead gate)")
            ok = False
    ladder = sections[2]
    if not ladder["landed_on_serial"]:
        print("FAIL: dead-fleet dispatch did not degrade to serial")
        ok = False
    if cli is not None:
        if cli["exit_codes"] != [0, 0]:
            print("FAIL: CLI chaos run exited nonzero")
            ok = False
        if not cli["labels_identical"] or not cli["stats_surfaced"]:
            print("FAIL: CLI remote output differs or stats missing")
            ok = False
    return ok


def test_chaos(benchmark, capsys):
    assert benchmark.pedantic(
        run, args=(False, capsys), rounds=1, iterations=1
    )


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    echo_json = "--json" in sys.argv
    sys.exit(0 if run(smoke=smoke, echo_json=echo_json) else 1)
