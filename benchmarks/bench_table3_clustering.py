"""Table III — clustering quality of all methods on all datasets.

Regenerates the paper's main clustering table: Acc / F1 / NMI / ARI /
Purity for every method on every dataset profile, plus the overall-rank
column.  ``-`` cells mark methods that exceed their memory limits, exactly
like the paper's OOM/timeout entries.

Expected shape (paper): SGLA and SGLA+ take the two best overall ranks and
lead (or tie the lead) on most datasets.
"""

from harness import (
    BENCH_DATASETS,
    CLUSTER_METRICS,
    bench_mvag,
    clustering_methods,
    emit,
    format_table,
    run_clustering,
)
from repro.evaluation.clustering_metrics import clustering_report
from repro.evaluation.ranking import overall_ranks


def _full_table():
    table = {}
    for method in clustering_methods():
        table[method] = {}
        for dataset in BENCH_DATASETS:
            labels, _ = run_clustering(method, dataset, seed=0)
            if labels is None:
                table[method][dataset] = {m: None for m in CLUSTER_METRICS}
            else:
                truth = bench_mvag(dataset).labels
                table[method][dataset] = clustering_report(truth, labels)
    return table


def test_table3_clustering_quality(benchmark, capsys):
    table = benchmark.pedantic(_full_table, rounds=1, iterations=1)
    ranks = overall_ranks(table)

    methods = list(clustering_methods())
    blocks = []
    for dataset in BENCH_DATASETS:
        rows = []
        for method in methods:
            cells = table[method][dataset]
            rows.append([method] + [cells[m] for m in CLUSTER_METRICS])
        blocks.append(
            format_table(
                ["method"] + [m.upper() for m in CLUSTER_METRICS],
                rows,
                title=f"[{dataset}]",
            )
        )
    rank_rows = sorted(ranks.items(), key=lambda kv: kv[1])
    blocks.append(
        format_table(
            ["method", "overall rank"],
            [(m, r) for m, r in rank_rows],
            title="[overall rank — lower is better]",
        )
    )
    emit(
        "table3_clustering",
        "Table III — clustering quality\n\n" + "\n\n".join(blocks),
        capsys,
    )

    # Shape assertions mirroring the paper's headline claims: the SGLA
    # family sits at the top of the rank column (the paper reports ranks
    # 1.7 / 2.0 vs 4.6 for the best baseline; with our reimplemented —
    # and in places stronger-than-original — baselines we require top-2
    # presence and both methods in the top 4).
    ordered = [m for m, _ in rank_rows]
    assert set(ordered[:2]) & {"sgla", "sgla+"}, (
        f"SGLA family should lead the rank column, got {ordered[:2]}"
    )
    assert "sgla" in ordered[:4] and "sgla+" in ordered[:4], ordered
    assert ranks["sgla"] < ranks["wmsc"]
    assert ranks["sgla+"] < ranks["wmsc"]
