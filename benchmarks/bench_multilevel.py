"""Multilevel SGLA benchmark: the ladder vs the flat path (DESIGN.md §12).

Two gated claims, each measured in a **fresh subprocess** so the
peak-RSS baselines are the bare interpreter (``ru_maxrss`` is a
process-lifetime high-water mark — see :mod:`repro.analysis.memory`):

* **mid-scale speed + agreement** (n=200k full / n=20k smoke): on one
  shared set of view Laplacians, the multilevel fit must be >= 3x
  faster than the flat trust-linear search (1.5x in smoke, where
  constant overheads weigh more), the refined ``w*`` must sit within
  1e-3 (inf-norm) of the flat optimum, and spectral clustering from
  the two integrated Laplacians must land within 0.02 ARI of each
  other against the planted truth.
* **million-node memory budget** (n=10^6, full mode only): the
  multilevel fit — out-of-core memmap dataset, streaming Laplacian
  assembly, landmark ladder — must *complete* inside a hard
  ``RLIMIT_AS`` address-space budget that the flat path *exceeds*
  (the flat subprocess must die with ``MemoryError`` building its
  full-size fast-path stack / search state under the same limit).
  This is a real kill, not a soft watermark: both children run under
  ``resource.setrlimit``.  Smoke mode runs only the multilevel child
  (at n=50k, generous budget) to exercise the subprocess + rlimit
  machinery within CI time.

The datasets are out-of-core end to end: ``generate_mvag_memmap``
streams generator output to disk (bit-identical to the in-RAM
generator), and every phase opens the memmap directory read-only.

Runs as a plain script (``--smoke`` for the CI leg, ``--json`` to echo
the machine-readable results always written under
``benchmarks/results/``).  The ``--phase`` flag is internal: the parent
re-invokes this file once per phase with ``--out``/``--budget-mb``.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

# Importable both under pytest (benchmarks/conftest.py) and as a script.
sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np

from harness import emit, emit_json, format_table

K = 5
KNN_K = 10
SEED = 0
EPS = 1e-4

FULL_MID_N = 200_000
SMOKE_MID_N = 20_000
FULL_BIG_N = 1_000_000
SMOKE_BIG_N = 50_000

#: RLIMIT_AS for the million-node phases, in MB.  Calibrated between
#: the measured peaks at n=10^6: the multilevel child (hierarchy +
#: 8 refine solves) never exceeds the shared Laplacian build's
#: ~3.3 GB high-water, while the flat child's union-stack build pushes
#: past 3.9 GB before its first eigensolve.  The smoke budget only
#: needs to admit the small multilevel child.
FULL_BUDGET_MB = 3_800
SMOKE_BUDGET_MB = 2_048

SPEEDUP_FLOOR_FULL = 3.0
SPEEDUP_FLOOR_SMOKE = 1.5
W_AGREEMENT_INF = 1e-3
ARI_MARGIN = 0.02

#: ladder configuration of every multilevel run in this bench: landmark
#: coarsening shrinks ~4x per rung, so the hierarchy build stays a few
#: percent of the fit even at n=10^6 (heavy-edge's slowly-shrinking
#: early rungs measurably dominate at this scale — DESIGN.md §12).
COARSEN_KWARGS = dict(
    coarsen_levels=10,
    coarsen_backend="landmark",
    coarsen_params={"ratio": 0.25},
)


def _generate(path: Path, n: int):
    from repro.datasets.generator import generate_mvag_memmap

    data = generate_mvag_memmap(
        path,
        n_nodes=n,
        n_clusters=K,
        graph_view_strengths=(0.7, 0.4),
        attribute_view_dims=(32,),
        attribute_view_signals=(0.6,),
        avg_degree=10.0,
        seed=SEED,
    )
    data.close()
    return path


def _build_laplacians(dataset: Path):
    from repro.core.laplacian import build_view_laplacians
    from repro.datasets.io import open_mvag_memmap

    data = open_mvag_memmap(dataset)
    laplacians = build_view_laplacians(
        data, knn_k=KNN_K, knn_backend="rp-forest"
    )
    return data, laplacians


def _flat_config():
    from repro.core.sgla import SGLAConfig

    return SGLAConfig(eps=EPS, seed=SEED)


def _multilevel_config():
    from repro.core.sgla import SGLAConfig

    return SGLAConfig(eps=EPS, seed=SEED, **COARSEN_KWARGS)


# --------------------------------------------------------------------- #
# Phases (each runs in its own subprocess; prints one JSON line)
# --------------------------------------------------------------------- #


def phase_midscale(dataset: Path) -> dict:
    """Flat vs multilevel on one shared Laplacian set: time, w*, ARI."""
    from repro.analysis.memory import MemoryTracker, peak_rss_mb
    from repro.cluster.spectral import spectral_clustering
    from repro.core.sgla import SGLA
    from repro.evaluation.clustering_metrics import clustering_report

    data, laplacians = _build_laplacians(dataset)
    with MemoryTracker(label="midscale") as tracker:
        start = time.perf_counter()
        multi = SGLA(_multilevel_config()).fit(laplacians, k=K)
        multi_seconds = time.perf_counter() - start
        tracker.check("multilevel")

        start = time.perf_counter()
        flat = SGLA(_flat_config()).fit(laplacians, k=K)
        flat_seconds = time.perf_counter() - start
        tracker.check("flat")

    truth = data.labels
    ari = {}
    for name, result in (("multilevel", multi), ("flat", flat)):
        labels = spectral_clustering(result.laplacian, k=K, seed=SEED)
        ari[name] = clustering_report(truth, labels)["ari"]

    return {
        "phase": "midscale",
        "n": data.n_nodes,
        "flat_seconds": flat_seconds,
        "multilevel_seconds": multi_seconds,
        "speedup": flat_seconds / max(multi_seconds, 1e-12),
        "flat_weights": flat.weights.tolist(),
        "multilevel_weights": multi.weights.tolist(),
        "w_agreement_inf": float(
            np.abs(flat.weights - multi.weights).max()
        ),
        "flat_objective": flat.objective_value,
        "multilevel_objective": multi.objective_value,
        "flat_evaluations": flat.n_objective_evaluations,
        "refine_evaluations": multi.coarsen_stats.refine_evaluations,
        "coarsen_summary": multi.coarsen_stats.summary(),
        "ari_flat": ari["flat"],
        "ari_multilevel": ari["multilevel"],
        "ari_gap": abs(ari["flat"] - ari["multilevel"]),
        "peak_rss_mb": peak_rss_mb(),
        "memory": tracker.report(),
    }


def phase_bigfit(dataset: Path, flat: bool, budget_mb: float) -> dict:
    """One fit under the address-space budget (already rlimited).

    The multilevel child must finish; the flat child is *expected* to
    die with ``MemoryError`` in full mode — which it reports as a
    result, not a crash.
    """
    from repro.analysis.memory import MemoryTracker, peak_rss_mb
    from repro.core.sgla import SGLA

    mode = "flat" if flat else "multilevel"
    try:
        data, laplacians = _build_laplacians(dataset)
        config = _flat_config() if flat else _multilevel_config()
        with MemoryTracker(label=f"bigfit-{mode}") as tracker:
            start = time.perf_counter()
            result = SGLA(config).fit(laplacians, k=K)
            fit_seconds = time.perf_counter() - start
            tracker.check("fit")
    except MemoryError:
        return {
            "phase": f"bigfit-{mode}",
            "completed": False,
            "memory_error": True,
            "budget_mb": budget_mb,
            "peak_rss_mb": peak_rss_mb(),
        }
    report = {
        "phase": f"bigfit-{mode}",
        "completed": True,
        "memory_error": False,
        "budget_mb": budget_mb,
        "n": data.n_nodes,
        "fit_seconds": fit_seconds,
        "weights": result.weights.tolist(),
        "objective": result.objective_value,
        "peak_rss_mb": peak_rss_mb(),
        "memory": tracker.report(),
    }
    if result.coarsen_stats is not None:
        report["coarsen_summary"] = result.coarsen_stats.summary()
        report["refine_evaluations"] = (
            result.coarsen_stats.refine_evaluations
        )
    return report


def _run_phase(
    phase: str, dataset: Path, budget_mb: float = 0.0,
    timeout: float = 3600.0,
) -> dict:
    """Re-invoke this script for one phase in a fresh subprocess."""
    with tempfile.NamedTemporaryFile(suffix=".json") as handle:
        out = handle.name
        argv = [
            sys.executable, str(Path(__file__).resolve()),
            "--phase", phase, "--dataset", str(dataset), "--out", out,
        ]
        if budget_mb:
            argv += ["--budget-mb", str(budget_mb)]
        try:
            proc = subprocess.run(
                argv, capture_output=True, text=True, timeout=timeout
            )
        except subprocess.TimeoutExpired:
            return {
                "phase": phase,
                "completed": False,
                "memory_error": False,
                "timed_out": True,
                "budget_mb": budget_mb,
                "child_exit_code": None,
            }
        payload = Path(out).read_text().strip()
    if payload:
        report = json.loads(payload)
    else:
        # The child died before it could report (e.g. the rlimit killed
        # it outside the guarded region) — that still answers the
        # budget question for the flat phase.
        report = {
            "phase": phase,
            "completed": False,
            "memory_error": "MemoryError" in proc.stderr,
            "budget_mb": budget_mb,
            "exit_code": proc.returncode,
        }
    report["child_exit_code"] = proc.returncode
    return report


# --------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------- #


def run(smoke: bool = False, capsys=None, echo_json: bool = False) -> bool:
    mid_n = SMOKE_MID_N if smoke else FULL_MID_N
    big_n = SMOKE_BIG_N if smoke else FULL_BIG_N
    budget_mb = SMOKE_BUDGET_MB if smoke else FULL_BUDGET_MB
    speedup_floor = SPEEDUP_FLOOR_SMOKE if smoke else SPEEDUP_FLOOR_FULL

    with tempfile.TemporaryDirectory() as tmp:
        tmp_path = Path(tmp)
        midscale = _run_phase(
            "midscale", _generate(tmp_path / "mid", mid_n)
        )
        big_dataset = _generate(tmp_path / "big", big_n)
        big_multi = _run_phase(
            "bigfit-multilevel", big_dataset, budget_mb=budget_mb
        )
        big_flat = (
            _run_phase("bigfit-flat", big_dataset, budget_mb=budget_mb)
            if not smoke
            else None
        )

    gates = {
        "speedup_floor": speedup_floor,
        "speedup_ok": midscale.get("speedup", 0.0) >= speedup_floor,
        "w_agreement_limit": W_AGREEMENT_INF,
        "w_agreement_ok": (
            midscale.get("w_agreement_inf", np.inf) <= W_AGREEMENT_INF
        ),
        "ari_margin": ARI_MARGIN,
        "ari_ok": midscale.get("ari_gap", np.inf) <= ARI_MARGIN,
        "budget_mb": budget_mb,
        "multilevel_in_budget": bool(big_multi.get("completed")),
        "flat_exceeds_budget": (
            None if big_flat is None
            else bool(not big_flat.get("completed"))
        ),
    }

    rows = [
        (
            "midscale flat", midscale["n"],
            f"{midscale['flat_seconds']:.1f}",
            f"{midscale['flat_evaluations']} evals",
            f"ARI {midscale['ari_flat']:.3f}",
        ),
        (
            "midscale multilevel", midscale["n"],
            f"{midscale['multilevel_seconds']:.1f}",
            f"{midscale['refine_evaluations']} fine evals",
            f"ARI {midscale['ari_multilevel']:.3f}",
        ),
        (
            "big multilevel", big_multi.get("n", big_n),
            f"{big_multi.get('fit_seconds', float('nan')):.1f}",
            f"peak {big_multi.get('peak_rss_mb', float('nan')):.0f} MB",
            "completed" if big_multi.get("completed") else "FAILED",
        ),
    ]
    if big_flat is not None:
        rows.append(
            (
                "big flat", big_n,
                "-",
                f"budget {budget_mb} MB",
                "MemoryError (expected)"
                if not big_flat.get("completed")
                else "COMPLETED (gate broken)",
            )
        )
    table = format_table(
        ["phase", "n", "seconds", "work", "outcome"],
        rows,
        title=(
            f"Multilevel SGLA vs flat ({'smoke' if smoke else 'full'}: "
            f"midscale n={mid_n}, big n={big_n}, "
            f"RLIMIT_AS {budget_mb} MB)"
        ),
    )
    verdict = (
        f"\nmidscale: {midscale['speedup']:.2f}x speedup "
        f"(floor {speedup_floor}x), |dw*|_inf "
        f"{midscale['w_agreement_inf']:.2e} (limit {W_AGREEMENT_INF}), "
        f"ARI gap {midscale['ari_gap']:.4f} (limit {ARI_MARGIN})\n"
        f"ladder: {midscale['coarsen_summary']}"
    )

    name = "multilevel" + ("_smoke" if smoke else "")
    emit(name, table + verdict, capsys)
    payload = {
        "mode": "smoke" if smoke else "full",
        "config": {
            "k": K,
            "knn_k": KNN_K,
            "eps": EPS,
            "seed": SEED,
            "coarsen": {
                key: value for key, value in COARSEN_KWARGS.items()
            },
        },
        "gates": gates,
        "midscale": midscale,
        "big_multilevel": big_multi,
    }
    if big_flat is not None:
        payload["big_flat"] = big_flat
    emit_json(name, payload, echo=echo_json)

    ok = True
    for gate, passed in (
        ("midscale speedup", gates["speedup_ok"]),
        ("w* agreement", gates["w_agreement_ok"]),
        ("ARI margin", gates["ari_ok"]),
        ("multilevel within memory budget", gates["multilevel_in_budget"]),
    ):
        if not passed:
            print(f"FAIL: {gate} gate")
            ok = False
    if big_flat is not None and gates["flat_exceeds_budget"] is False:
        print(
            "FAIL: flat path completed inside the memory budget — "
            "the out-of-core claim needs a tighter budget"
        )
        ok = False
    return ok


def test_multilevel_bench(benchmark, capsys):
    assert benchmark.pedantic(
        run, args=(False, capsys), rounds=1, iterations=1
    )


def _main(argv) -> int:
    if "--phase" in argv:
        phase = argv[argv.index("--phase") + 1]
        dataset = Path(argv[argv.index("--dataset") + 1])
        out = Path(argv[argv.index("--out") + 1])
        budget_mb = 0.0
        if "--budget-mb" in argv:
            budget_mb = float(argv[argv.index("--budget-mb") + 1])
            import resource

            limit = int(budget_mb * 1024 * 1024)
            resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
        if phase == "midscale":
            report = phase_midscale(dataset)
        elif phase == "bigfit-multilevel":
            report = phase_bigfit(dataset, flat=False, budget_mb=budget_mb)
        elif phase == "bigfit-flat":
            report = phase_bigfit(dataset, flat=True, budget_mb=budget_mb)
        else:
            raise SystemExit(f"unknown phase {phase!r}")
        out.write_text(json.dumps(report))
        return 0
    return 0 if run(
        smoke="--smoke" in argv, echo_json="--json" in argv
    ) else 1


if __name__ == "__main__":
    sys.exit(_main(sys.argv[1:]))
