"""Fig. 2 — the running example: objective values under varying weights.

Regenerates the table of Fig. 2b: ``g_k(L)``, ``lambda_2(L)`` and their
difference for ``w1`` from 1.0 down to 0.0 on the 8-node two-view MVAG.
The paper's shape: both single-view extremes are poor, the optimum sits at
interior weights (paper: around ``w1 = 0.6``).

Runs as a pytest benchmark or a plain script; results land in
``results/fig2_running_example.{txt,json}`` (``--json`` echoes the JSON
to stdout).
"""

import sys

import numpy as np

from harness import emit, emit_json, format_table
from repro.core.laplacian import build_view_laplacians
from repro.core.objective import SpectralObjective
from repro.datasets.running_example import running_example_mvag


def _sweep():
    mvag = running_example_mvag()
    laplacians = build_view_laplacians(mvag)
    objective = SpectralObjective(laplacians, k=2, gamma=0.0, cache=False)
    rows = []
    for w1 in np.round(np.arange(1.0, -0.01, -0.1), 2):
        parts = objective.components([w1, 1.0 - w1])
        rows.append(
            (w1, 1.0 - w1, parts.eigengap, parts.connectivity,
             parts.eigengap - parts.connectivity)
        )
    return rows


def run(capsys=None, echo_json: bool = False, rows=None) -> bool:
    if rows is None:
        rows = _sweep()
    table = format_table(
        ["w1", "w2", "g_k(L)", "lambda_2(L)", "g_k - lambda_2"],
        rows,
        title="Fig. 2b — running example objective sweep",
    )
    values = [row[4] for row in rows]
    best_index = int(np.argmin(values))
    verdict = (
        f"\nminimum at w1={rows[best_index][0]:.1f} "
        f"(paper: interior optimum near w1=0.6; extremes worst)\n"
        f"extreme w1=1.0 value {values[0]:.3f}, "
        f"extreme w1=0.0 value {values[-1]:.3f}, "
        f"interior best {values[best_index]:.3f}"
    )
    emit("fig2_running_example", table + verdict, capsys)
    emit_json(
        "fig2_running_example",
        {
            "sweep": [
                {
                    "w1": row[0],
                    "w2": row[1],
                    "eigengap": row[2],
                    "connectivity": row[3],
                    "objective": row[4],
                }
                for row in rows
            ],
            "best_w1": rows[best_index][0],
            "best_value": values[best_index],
            "extreme_values": [values[0], values[-1]],
        },
        echo=echo_json,
    )
    # Shape: interior beats both single-view extremes.
    return (
        0 < best_index < len(rows) - 1
        and values[best_index] < values[0]
        and values[best_index] < values[-1]
    )


def test_fig2_running_example(benchmark, capsys):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    assert run(capsys=capsys, rows=rows)


if __name__ == "__main__":
    sys.exit(0 if run(echo_json="--json" in sys.argv) else 1)
