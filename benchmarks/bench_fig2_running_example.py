"""Fig. 2 — the running example: objective values under varying weights.

Regenerates the table of Fig. 2b: ``g_k(L)``, ``lambda_2(L)`` and their
difference for ``w1`` from 1.0 down to 0.0 on the 8-node two-view MVAG.
The paper's shape: both single-view extremes are poor, the optimum sits at
interior weights (paper: around ``w1 = 0.6``).
"""

import numpy as np

from harness import emit, format_table
from repro.core.laplacian import build_view_laplacians
from repro.core.objective import SpectralObjective
from repro.datasets.running_example import running_example_mvag


def _sweep():
    mvag = running_example_mvag()
    laplacians = build_view_laplacians(mvag)
    objective = SpectralObjective(laplacians, k=2, gamma=0.0, cache=False)
    rows = []
    for w1 in np.round(np.arange(1.0, -0.01, -0.1), 2):
        parts = objective.components([w1, 1.0 - w1])
        rows.append(
            (w1, 1.0 - w1, parts.eigengap, parts.connectivity,
             parts.eigengap - parts.connectivity)
        )
    return rows


def test_fig2_running_example(benchmark, capsys):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    table = format_table(
        ["w1", "w2", "g_k(L)", "lambda_2(L)", "g_k - lambda_2"],
        rows,
        title="Fig. 2b — running example objective sweep",
    )
    values = [row[4] for row in rows]
    best_index = int(np.argmin(values))
    verdict = (
        f"\nminimum at w1={rows[best_index][0]:.1f} "
        f"(paper: interior optimum near w1=0.6; extremes worst)\n"
        f"extreme w1=1.0 value {values[0]:.3f}, "
        f"extreme w1=0.0 value {values[-1]:.3f}, "
        f"interior best {values[best_index]:.3f}"
    )
    emit("fig2_running_example", table + verdict, capsys)
    # Shape assertions: interior beats both single-view extremes.
    assert 0 < best_index < len(rows) - 1
    assert values[best_index] < values[0]
    assert values[best_index] < values[-1]
