"""Fig. 3 — objective surface vs quadratic interpolation on Yelp (r = 3).

The paper plots ``h(w)`` over the weight simplex (Fig. 3a) and the fitted
surrogate ``h_Theta*`` (Fig. 3b), showing a smooth paraboloid-like surface
and closely co-located minimizers.  We regenerate both surfaces on the
Yelp profile and report the surrogate's fit error and the distance between
the two minimizers.

Runs as a pytest benchmark or a plain script; results land in
``results/fig3_surface.{txt,json}`` (``--json`` echoes the JSON to
stdout).
"""

import sys

import numpy as np

from harness import bench_mvag, emit, emit_json, profile_config
from repro.core.laplacian import build_view_laplacians
from repro.core.objective import SpectralObjective, objective_surface
from repro.core.sampling import interpolation_samples
from repro.core.surrogate import fit_surrogate

DATASET = "yelp_small"
RESOLUTION = 0.1


def _surfaces():
    mvag = bench_mvag(DATASET)
    config = profile_config(DATASET)
    laplacians = build_view_laplacians(mvag, knn_k=config.knn_k)
    objective = SpectralObjective(laplacians, k=mvag.n_classes, gamma=0.5)

    surface = objective_surface(objective, resolution=RESOLUTION)
    samples = interpolation_samples(3)
    values = [objective(sample) for sample in samples]
    surrogate = fit_surrogate(samples, values, alpha=0.05)
    surrogate_values = np.array([surrogate(p) for p in surface["points"]])
    return surface, surrogate_values, surrogate, samples


def run(capsys=None, echo_json: bool = False, computed=None) -> bool:
    if computed is None:
        computed = _surfaces()
    surface, surrogate_values, surrogate, samples = computed
    points = surface["points"]
    true_values = surface["values"]

    true_argmin = points[int(np.argmin(true_values))]
    surrogate_argmin = points[int(np.argmin(surrogate_values))]
    argmin_distance = float(np.linalg.norm(true_argmin - surrogate_argmin))
    rmse = float(np.sqrt(np.mean((true_values - surrogate_values) ** 2)))

    report = (
        f"Fig. 3 — objective surface vs surrogate ({DATASET}, r=3, "
        f"{points.shape[0]} grid points at step {RESOLUTION})\n"
        f"true surface range:      [{true_values.min():.3f}, "
        f"{true_values.max():.3f}]\n"
        f"surrogate fit RMSE:      {rmse:.4f}\n"
        f"true argmin weights:     {np.round(true_argmin, 2)}\n"
        f"surrogate argmin:        {np.round(surrogate_argmin, 2)}\n"
        f"argmin distance:         {argmin_distance:.3f}\n"
        f"(paper: surrogate resembles the paraboloid surface and its\n"
        f" minimizer lands close to the true minimizer)"
    )
    emit("fig3_surface", report, capsys)
    emit_json(
        "fig3_surface",
        {
            "dataset": DATASET,
            "resolution": RESOLUTION,
            "grid_points": int(points.shape[0]),
            "true_range": [float(true_values.min()), float(true_values.max())],
            "surrogate_rmse": rmse,
            "true_argmin": true_argmin,
            "surrogate_argmin": surrogate_argmin,
            "argmin_distance": argmin_distance,
        },
        echo=echo_json,
    )

    # Shape: the surrogate interpolates its samples and lands its
    # minimizer near the true one (within a simplex-diagonal fraction).
    objective_at_samples = [
        true_values[int(np.argmin(np.linalg.norm(points - s, axis=1)))]
        for s in samples
    ]
    return bool(np.all(np.isfinite(objective_at_samples))) and (
        argmin_distance < 0.6
    )


def test_fig3_surface(benchmark, capsys):
    computed = benchmark.pedantic(_surfaces, rounds=1, iterations=1)
    assert run(capsys=capsys, computed=computed)


if __name__ == "__main__":
    sys.exit(0 if run(echo_json="--json" in sys.argv) else 1)
