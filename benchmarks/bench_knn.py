"""Neighbor-search backend benchmark (DESIGN.md §9).

Measures KNN-graph construction across the :mod:`repro.neighbors`
registry — ``exact`` (the paper's exhaustive blocked-GEMM build),
``exact-f32`` (float32 similarity sweep + float64 re-rank), and the
``rp-forest`` approximate backend at three operating points — on
manifold-structured attribute features at n ∈ {2 000, 8 000, 20 000}.
For every backend it reports build time, speedup over ``exact``, the
directed-edge recall of the produced graph against the exact graph, and
the fraction of similarity pairs actually scored.

The dataset: cluster-structured features with **low intrinsic dimension**
(latent dim 8 embedded linearly in 128 ambient dims plus noise),
matching real attribute views — bag-of-words and profile features have
local intrinsic dimensionality far below their ambient dimension.  This
matters because approximate neighbor search is information-theoretically
hopeless on full-rank isotropic noise (similarities concentrate), and
honest ANN numbers must say which regime they are from.

Acceptance gates (full mode): at n = 20 000 the gate config must reach
**>= 5x build speedup over exact with recall >= 0.95**.  Smoke mode
(``--smoke``, the CI leg) runs n = 2 000 only, gates on recall and
exact-f32 parity (wall-clock at that size is noise), and drives
``--knn-backend rp-forest`` end-to-end through the CLI, gating on the
recall estimate the NeighborStats line reports.

Runs as a pytest benchmark or a plain script; ``--json`` echoes the
machine-readable results that are always written under
``benchmarks/results/``.
"""

from __future__ import annotations

import contextlib
import io
import re
import sys
import time
from pathlib import Path

# Importable both under pytest (benchmarks/conftest.py) and as a script.
sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np

from harness import emit, emit_json, format_table
from repro.core.knn import knn_graph
from repro.neighbors import NeighborStats

#: acceptance floors at n=20k (full mode).
SPEEDUP_FLOOR = 5.0
RECALL_FLOOR = 0.95

#: dataset shape: ambient dims / intrinsic dims / clusters.
AMBIENT_DIM = 128
LATENT_DIM = 8
N_CLUSTERS = 10

#: the rp-forest operating points reported in the table; "fast" is the
#: n=20k acceptance-gate config (recall margin from 7 trees, wall-clock
#: margin from the 64-dim tree-build sketch).
RP_CONFIGS = [
    (
        "rp-forest/fast",
        {"n_trees": 7, "leaf_size": 160, "refine_iters": 0,
         "sketch_dim": 64},
    ),
    ("rp-forest/default", {}),
    (
        "rp-forest/high-recall",
        {"n_trees": 10, "leaf_size": 160, "refine_iters": 1},
    ),
]

GATE_CONFIG = "rp-forest/fast"


def manifold_features(n, seed=0, return_labels=False):
    """Cluster-structured features with low intrinsic dimension."""
    rng = np.random.default_rng(seed)
    latent = rng.standard_normal((n, LATENT_DIM))
    labels = rng.integers(0, N_CLUSTERS, size=n)
    centers = rng.standard_normal((N_CLUSTERS, LATENT_DIM)) * 3
    latent += centers[labels]
    projection = rng.standard_normal((LATENT_DIM, AMBIENT_DIM))
    features = (
        latent @ projection + 0.05 * rng.standard_normal((n, AMBIENT_DIM))
    )
    if return_labels:
        return features, labels
    return features


def _best_of(func, repeats):
    best, result = np.inf, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func()
        best = min(best, time.perf_counter() - start)
    return best, result


def directed_recall(exact_graph, approx_graph):
    """Fraction of exact-graph edges present in the approximate graph."""
    exact_edges = set(zip(*exact_graph.nonzero()))
    approx_edges = set(zip(*approx_graph.nonzero()))
    return len(exact_edges & approx_edges) / max(len(exact_edges), 1)


def bench_size(n, k=10, seed=0, repeats=3):
    """All backends on one problem size; returns per-backend stat dicts."""
    features = manifold_features(n, seed=seed)
    exact_seconds, exact_graph = _best_of(
        lambda: knn_graph(features, k=k), repeats
    )
    rows = [{
        "n": n,
        "backend": "exact",
        "seconds": exact_seconds,
        "speedup": 1.0,
        "recall": 1.0,
        "candidate_fraction": 1.0,
        "pattern_identical": True,
    }]

    f32_seconds, f32_graph = _best_of(
        lambda: knn_graph(features, k=k, backend="exact-f32"), repeats
    )
    rows.append({
        "n": n,
        "backend": "exact-f32",
        "seconds": f32_seconds,
        "speedup": exact_seconds / max(f32_seconds, 1e-12),
        "recall": directed_recall(exact_graph, f32_graph),
        "candidate_fraction": 1.0,
        "pattern_identical": bool(
            np.array_equal(exact_graph.indptr, f32_graph.indptr)
            and np.array_equal(exact_graph.indices, f32_graph.indices)
        ),
    })

    for label, params in RP_CONFIGS:
        stats = NeighborStats(recall_sample=0)  # keep the timed path pure

        def build():
            return knn_graph(
                features, k=k, backend="rp-forest", backend_params=params
            )

        rp_seconds, rp_graph = _best_of(build, repeats)
        # Candidate accounting re-runs untimed with stats attached.
        knn_graph(
            features, k=k, backend="rp-forest", backend_params=params,
            stats=stats,
        )
        rows.append({
            "n": n,
            "backend": label,
            "seconds": rp_seconds,
            "speedup": exact_seconds / max(rp_seconds, 1e-12),
            "recall": directed_recall(exact_graph, rp_graph),
            "candidate_fraction": stats.candidate_fraction,
            "pattern_identical": False,
            "params": params,
        })
    return rows


def bench_cli_smoke():
    """Drive --knn-backend rp-forest end-to-end through the CLI.

    Builds a labeled MVAG from the benchmark's manifold features
    (n = 2 000 — above the rp-forest size fallback), saves it, clusters
    it through ``repro.cli`` with ``--knn-backend rp-forest``, and
    parses the recall estimate off the CLI's NeighborStats line.
    """
    import tempfile

    from repro.cli import main
    from repro.core.mvag import MVAG
    from repro.datasets.io import save_mvag

    features, labels = manifold_features(2000, seed=0, return_labels=True)
    mvag = MVAG(
        attribute_views=[features], labels=labels, name="knn-smoke"
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = str(Path(tmp) / "knn_smoke.npz")
        save_mvag(mvag, path)
        buffer = io.StringIO()
        with contextlib.redirect_stdout(buffer):
            code = main([
                "cluster", path, "--method", "sgla+", "--knn-k", "10",
                "--knn-backend", "rp-forest",
            ])
    output = buffer.getvalue()
    match = re.search(r"recall~([0-9.]+)", output)
    return {
        "exit_code": code,
        "backend_line": next(
            (line for line in output.splitlines()
             if line.startswith("neighbors:")),
            "",
        ),
        "recall_estimate": float(match.group(1)) if match else None,
    }


def run(smoke: bool = False, capsys=None, echo_json: bool = False) -> bool:
    sizes = [2000] if smoke else [2000, 8000, 20000]
    all_rows = []
    for n in sizes:
        all_rows.extend(bench_size(n))

    table = format_table(
        ["n", "backend", "build (s)", "speedup", "recall",
         "pairs scored", "pattern"],
        [
            (
                row["n"],
                row["backend"],
                row["seconds"],
                f"{row['speedup']:.1f}x",
                f"{row['recall']:.3f}",
                f"{row['candidate_fraction']:.1%}",
                "=" if row["pattern_identical"] else "~",
            )
            for row in all_rows
        ],
        title=(
            "KNN graph construction by neighbor backend "
            f"(cosine, k=10, d={AMBIENT_DIM}, intrinsic dim {LATENT_DIM})"
        ),
    )

    cli = bench_cli_smoke() if smoke else None

    name = "knn" + ("_smoke" if smoke else "")
    text = table
    if cli is not None:
        text += f"\n\nCLI end-to-end: {cli['backend_line']}"
    emit(name, text, capsys)
    payload = {
        "mode": "smoke" if smoke else "full",
        "dataset": {
            "ambient_dim": AMBIENT_DIM,
            "latent_dim": LATENT_DIM,
            "n_clusters": N_CLUSTERS,
            "k": 10,
        },
        "gates": {
            "speedup_floor_20k": SPEEDUP_FLOOR,
            "recall_floor": RECALL_FLOOR,
            "gate_config": GATE_CONFIG,
        },
        "results": all_rows,
    }
    if cli is not None:
        payload["cli_smoke"] = cli
    emit_json(name, payload, echo=echo_json)

    ok = True
    for row in all_rows:
        if row["backend"] == "exact-f32" and not row["pattern_identical"]:
            print(
                f"FAIL: exact-f32 changed the neighbor set at n={row['n']}"
            )
            ok = False
        if row["backend"].startswith("rp-forest") and (
            row["recall"] < RECALL_FLOOR
        ):
            print(
                f"FAIL: {row['backend']} recall {row['recall']:.3f} below "
                f"{RECALL_FLOOR} at n={row['n']}"
            )
            ok = False
    if not smoke:
        gate = next(
            row for row in all_rows
            if row["n"] == 20000 and row["backend"] == GATE_CONFIG
        )
        if gate["speedup"] < SPEEDUP_FLOOR:
            print(
                f"FAIL: {GATE_CONFIG} speedup {gate['speedup']:.1f}x below "
                f"{SPEEDUP_FLOOR}x at n=20000"
            )
            ok = False
    if cli is not None:
        if cli["exit_code"] != 0:
            print("FAIL: CLI rp-forest run exited nonzero")
            ok = False
        if cli["recall_estimate"] is None or (
            cli["recall_estimate"] < RECALL_FLOOR
        ):
            print(
                f"FAIL: CLI rp-forest recall estimate "
                f"{cli['recall_estimate']} below {RECALL_FLOOR}"
            )
            ok = False
    return ok


def test_knn(benchmark, capsys):
    assert benchmark.pedantic(run, args=(False, capsys), rounds=1, iterations=1)


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    echo_json = "--json" in sys.argv
    sys.exit(0 if run(smoke=smoke, echo_json=echo_json) else 1)
