"""Table II — statistics of the (synthetic stand-in) MVAG datasets.

Regenerates the dataset-statistics table: n, r, per-graph-view edge counts,
per-attribute-view dimensionalities, and k — alongside the paper's original
node counts to make the MAG-* scaling substitution explicit.
"""

from harness import BENCH_DATASETS, bench_mvag, emit, format_table
from repro.datasets.profiles import dataset_profile


def _collect():
    rows = []
    for name in BENCH_DATASETS:
        profile = dataset_profile(name)
        mvag = bench_mvag(name)
        summary = mvag.summary()
        rows.append(
            (
                name,
                summary["n"],
                profile.paper_n,
                summary["r"],
                "; ".join(str(e) for e in summary["graph_edges"]),
                "; ".join(str(d) for d in summary["attribute_dims"]),
                summary["k"],
            )
        )
    return rows


def test_table2_dataset_statistics(benchmark, capsys):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)
    table = format_table(
        ["dataset", "n", "paper n", "r", "m_i of G_i", "d_j of X_j", "k"],
        rows,
        title="Table II — dataset statistics (synthetic profiles)",
    )
    emit("table2_datasets", table, capsys)

    # Structure assertions against Table II.
    by_name = {row[0]: row for row in rows}
    assert by_name["rm"][3] == 11  # r = 11
    assert by_name["yelp_small"][6] == 3  # k = 3
    assert by_name["mag_phy_small"][2] == 2353996  # paper n preserved
    for row in rows:
        assert row[1] >= 50
