"""Routing front-tier benchmark: chaos failover and membership churn.

Two legs against the consistent-hash router (DESIGN.md §14):

* **chaos** — three spawned daemons behind a :class:`Router`; drivers
  submit objective jobs across many ring keys while one daemon is
  SIGKILLed mid-traffic.  The gate: every admitted request completes,
  every completed result is **bit-identical** to a single-daemon
  baseline run (failover changes *where* a job runs, never *what* it
  returns), at least one transparent failover actually happened, and
  no failure was swallowed silently — the ``RouteStats`` counters
  account for every detour;
* **churn** — pure ring arithmetic over sampled keys: removing one of
  N nodes must remap at most ``1.5/N`` of keys (so ``1 - 1.5/N`` of
  dataset-cache locality survives membership change), survivors keep
  every key they already owned, and with replication 2 any single
  failure leaves every key a live replica.

Runs as a plain script (``--smoke`` for the CI leg, ``--json`` to echo
the machine-readable results always written under
``benchmarks/results/``).
"""

from __future__ import annotations

import sys
import threading
import time
from pathlib import Path

# Importable both under pytest (benchmarks/conftest.py) and as a script.
sys.path.insert(0, str(Path(__file__).parent))
sys.path.insert(0, str(Path(__file__).parent.parent / "src"))

import numpy as np

from harness import emit, emit_json, format_table
from repro.datasets.profiles import load_profile_mvag
from repro.serve import ServeClient, ServeConfig, ServeDaemon
from repro.serve.fleet import FleetManager
from repro.serve.ring import HashRing, remap_fraction, route_key
from repro.serve.router import Router, RouterConfig

PROFILE = "rm_small"
REMAP_CEILING_FACTOR = 1.5  # remap <= 1.5/N of keys on one removal


def _views(profile: str) -> int:
    return load_profile_mvag(profile, seed=0).n_views


def _weights(r: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    raw = rng.random(r) + 0.05
    return raw / raw.sum()


def _job(profile: str, r: int, seed: int) -> dict:
    return {
        "kind": "objective", "profile": profile, "seed": seed,
        "weights": _weights(r, seed),
    }


# --------------------------------------------------------------------- #
# Legs
# --------------------------------------------------------------------- #


def leg_chaos(profile: str, n_seeds: int, drivers: int) -> dict:
    r = _views(profile)
    seeds = list(range(n_seeds))

    # Baseline: one daemon serves every job — the identity reference.
    baseline = {}
    with ServeDaemon(ServeConfig(bind="127.0.0.1:0", workers=2)) as solo:
        with ServeClient(solo.address) as client:
            for seed in seeds:
                baseline[seed] = client.submit(_job(profile, r, seed))[
                    "result"
                ]

    results: dict = {}
    errors: list = []
    lock = threading.Lock()
    with FleetManager(3, argv_extra=["--workers", "1"]) as fleet:
        addrs = fleet.addresses()
        config = RouterConfig(
            daemons=tuple(addrs), replication=2, health_interval=0.2,
            breaker_failures=2, breaker_cooldown=1.0,
        )
        with Router(config) as router:
            # The victim is the primary of the first seed's key, so its
            # keys are guaranteed to need a detour after the kill.
            ring = HashRing(addrs, vnodes=config.vnodes)
            victim = ring.lookup(route_key(_job(profile, r, 0)))[0]
            victim_keys = sum(
                1 for seed in seeds
                if ring.lookup(route_key(_job(profile, r, seed)))[0]
                == victim
            )

            def submit_one(tag, seed: int) -> None:
                try:
                    reply = router.submit(_job(profile, r, seed))
                    with lock:
                        results[(tag, seed)] = reply
                except Exception as error:  # silent = gate failure
                    with lock:
                        errors.append(
                            (seed, type(error).__name__, str(error))
                        )

            def drive(driver_index: int) -> None:
                for round_index in range(3):
                    for seed in seeds:
                        submit_one((driver_index, round_index), seed)

            threads = [
                threading.Thread(target=drive, args=(i,))
                for i in range(drivers)
            ]
            started = time.monotonic()
            for thread in threads:
                thread.start()
            time.sleep(0.1)  # traffic in flight
            fleet.kill_one(victim)  # SIGKILL, mid-stream
            for thread in threads:
                thread.join(timeout=300)
            # Deterministic tail: the victim's own keys, post-mortem —
            # these MUST detour (failover or health skip), so a run in
            # which the drivers happened to finish early still
            # exercises and counts the failover path.
            for seed in seeds:
                key = route_key(_job(profile, r, seed))
                if ring.lookup(key)[0] == victim:
                    submit_one("post-kill", seed)
            wall = time.monotonic() - started
            snap = router.stats.snapshot()

    identical = bool(results) and all(
        reply["result"]["value"] == baseline[seed]["value"]
        and np.array_equal(
            reply["result"]["eigenvalues"], baseline[seed]["eigenvalues"]
        )
        for (_, seed), reply in results.items()
    )
    admitted = drivers * 3 * len(seeds) + victim_keys
    detours = snap["failovers"] + snap["skipped_unhealthy"]
    return {
        "leg": "chaos",
        "daemons": 3,
        "victim_primary_keys": victim_keys,
        "admitted": admitted,
        "completed": len(results),
        "errors": len(errors),
        "error_sample": errors[:3],
        "failovers": snap["failovers"],
        "skipped_unhealthy": snap["skipped_unhealthy"],
        "breaker_opens": snap["breaker_opens"],
        "qps": admitted / wall,
        "bit_identical": identical,
        "ok": (
            not errors
            and len(results) == admitted
            and identical
            and detours >= 1
        ),
    }


def leg_churn(node_counts, sample: int) -> dict:
    keys = [f"profile_{i}@{i % 13}" for i in range(sample)]
    rows = []
    ok = True
    for n in node_counts:
        nodes = [f"10.0.0.{i}:7000" for i in range(1, n + 1)]
        before = HashRing(nodes)
        after = HashRing(nodes[:-1])
        frac = remap_fraction(before, after, keys)
        ceiling = REMAP_CEILING_FACTOR / n
        # Survivors keep their keys — the cache-warmth property.
        sticky = all(
            after.lookup(key)[0] == before.lookup(key)[0]
            for key in keys[:500]
            if before.lookup(key)[0] != nodes[-1]
        )
        # Replication 2: any single dead node leaves a live replica.
        survivable = all(
            any(node != dead for node in before.lookup(key, 2))
            for dead in nodes
            for key in keys[:200]
        )
        row_ok = frac <= ceiling and frac > 0 and sticky and survivable
        ok = ok and row_ok
        rows.append({
            "nodes": n,
            "remap_fraction": frac,
            "remap_ceiling": ceiling,
            "cache_locality": 1.0 - frac,
            "survivors_sticky": sticky,
            "single_failure_survivable": survivable,
            "ok": row_ok,
        })
    return {
        "leg": "churn",
        "sampled_keys": sample,
        "rows": rows,
        "ok": ok,
    }


# --------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------- #


def run(smoke: bool = False, capsys=None, echo_json: bool = False) -> bool:
    legs = [
        leg_chaos(
            PROFILE,
            n_seeds=6 if smoke else 12,
            drivers=2 if smoke else 4,
        ),
        leg_churn((3, 4, 5), sample=1000 if smoke else 4000),
    ]

    rows = []
    for leg in legs:
        detail = ", ".join(
            f"{key}={_fmt(value)}" for key, value in leg.items()
            if key not in ("leg", "ok", "rows", "error_sample")
        )
        if leg["leg"] == "churn":
            detail += "; " + "; ".join(
                f"N={row['nodes']}: remap={row['remap_fraction']:.3f}"
                f"<={row['remap_ceiling']:.3f}"
                for row in leg["rows"]
            )
        rows.append([leg["leg"], "PASS" if leg["ok"] else "FAIL", detail])
    text = format_table(
        ["leg", "gate", "detail"], rows,
        title=(
            f"Routing front tier ({PROFILE}, "
            f"mode={'smoke' if smoke else 'full'})"
        ),
    )
    name = "router" + ("_smoke" if smoke else "")
    emit(name, text, capsys)
    payload = {
        "mode": "smoke" if smoke else "full",
        "profile": PROFILE,
        "gates": {
            "remap_ceiling_factor": REMAP_CEILING_FACTOR,
            "chaos_bit_identity": True,
        },
        "legs": legs,
    }
    emit_json(name, payload, echo=echo_json)

    ok = True
    for leg in legs:
        if not leg["ok"]:
            print(f"FAIL: router leg {leg['leg']} gate not met: {leg}")
            ok = False
    return ok


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)


def test_router(benchmark, capsys):
    assert benchmark.pedantic(
        run, args=(True, capsys), rounds=1, iterations=1
    )


if __name__ == "__main__":
    smoke = "--smoke" in sys.argv
    echo_json = "--json" in sys.argv
    sys.exit(0 if run(smoke=smoke, echo_json=echo_json) else 1)
