"""Pytest configuration for the benchmark suite."""

import sys
from pathlib import Path

# Make `harness` importable regardless of how pytest was invoked.
sys.path.insert(0, str(Path(__file__).parent))
