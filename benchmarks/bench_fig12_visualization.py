"""Fig. 12 — embedding visualization (t-SNE), quantified.

The paper shows t-SNE scatter plots of embeddings on RM and Yelp, arguing
SGLA+ separates the ground-truth classes more cleanly than the strongest
baselines.  Headless here, we compute the same 2-D t-SNE projections and
report quantitative separation scores (silhouette and centroid-separation)
per method — the same ordering the visual conveys (DESIGN.md §5).
"""

from harness import bench_mvag, emit, format_table, run_embedding
from repro.analysis.separation import class_separation, silhouette_score
from repro.analysis.tsne import tsne

DATASETS = ["rm", "yelp_small"]
METHODS = ["sgla+", "lmgec", "pane"]
TSNE_ITERATIONS = 300


def _scores():
    import numpy as np

    results = []
    for dataset in DATASETS:
        mvag = bench_mvag(dataset)
        for method in METHODS:
            embedding, _ = run_embedding(method, dataset, dim=32, seed=0)
            # L2-normalize rows before t-SNE (cosine geometry): embedding
            # row norms reflect hubness, not class identity, and would
            # dominate the Euclidean affinities otherwise.
            norms = np.linalg.norm(embedding, axis=1)
            norms[norms == 0] = 1.0
            embedding = embedding / norms[:, None]
            projection = tsne(
                embedding, dim=2, n_iterations=TSNE_ITERATIONS, seed=0
            )
            results.append(
                (
                    dataset,
                    method,
                    silhouette_score(projection, mvag.labels, seed=0),
                    class_separation(projection, mvag.labels),
                )
            )
    return results


def test_fig12_visualization(benchmark, capsys):
    results = benchmark.pedantic(_scores, rounds=1, iterations=1)
    table = format_table(
        ["dataset", "method", "t-SNE silhouette", "class separation"],
        results,
        title="Fig. 12 — t-SNE class-separation scores (higher = cleaner "
        "visual separation)",
    )
    emit("fig12_visualization", table, capsys)

    # Shape assertion: SGLA+ at or near the top on each dataset.
    for dataset in DATASETS:
        rows = [r for r in results if r[0] == dataset]
        silhouettes = {method: score for _, method, score, _ in rows}
        best = max(silhouettes.values())
        assert silhouettes["sgla+"] >= best - 0.15, (
            f"SGLA+ separation should be competitive on {dataset}: "
            f"{silhouettes}"
        )
