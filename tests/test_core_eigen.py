"""Tests for the bottom-eigenpair solvers."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.eigen import (
    bottom_eigenpairs,
    bottom_eigenvalues,
    fiedler_value,
)
from repro.core.laplacian import normalized_laplacian
from repro.utils.errors import ValidationError


def cycle_graph(n):
    adjacency = sp.lil_matrix((n, n))
    for i in range(n):
        j = (i + 1) % n
        adjacency[i, j] = adjacency[j, i] = 1.0
    return adjacency.tocsr()


def cycle_eigenvalues(n, t):
    """Analytic normalized-Laplacian spectrum of C_n: 1 - cos(2 pi k / n)."""
    values = np.sort([1.0 - np.cos(2 * np.pi * k / n) for k in range(n)])
    return values[:t]


class TestAnalyticSpectra:
    @pytest.mark.parametrize("method", ["dense", "lanczos", "lobpcg"])
    def test_cycle_graph(self, method):
        n, t = 24, 5
        laplacian = normalized_laplacian(cycle_graph(n))
        values = bottom_eigenvalues(laplacian, t, method=method, seed=0)
        np.testing.assert_allclose(values, cycle_eigenvalues(n, t), atol=1e-6)

    def test_eigenvalues_sorted_ascending(self):
        laplacian = normalized_laplacian(cycle_graph(30))
        values = bottom_eigenvalues(laplacian, 6, method="lanczos")
        assert np.all(np.diff(values) >= -1e-10)

    def test_eigenvectors_satisfy_equation(self):
        laplacian = normalized_laplacian(cycle_graph(20))
        values, vectors = bottom_eigenpairs(laplacian, 4, method="lanczos")
        for i in range(4):
            residual = laplacian @ vectors[:, i] - values[i] * vectors[:, i]
            assert np.linalg.norm(residual) < 1e-6

    def test_methods_agree(self):
        rng = np.random.default_rng(0)
        raw = sp.random(80, 80, density=0.1, random_state=3)
        raw = raw.maximum(raw.T)
        raw.setdiag(0)
        laplacian = normalized_laplacian(raw)
        dense = bottom_eigenvalues(laplacian, 5, method="dense")
        lanczos = bottom_eigenvalues(laplacian, 5, method="lanczos", seed=1)
        np.testing.assert_allclose(dense, lanczos, atol=1e-6)


class TestEdgeCases:
    def test_t_clamped_to_n(self):
        laplacian = normalized_laplacian(cycle_graph(5))
        values = bottom_eigenvalues(laplacian, 10, method="dense")
        assert values.shape == (5,)

    def test_t_must_be_positive(self):
        laplacian = normalized_laplacian(cycle_graph(5))
        with pytest.raises(ValidationError):
            bottom_eigenvalues(laplacian, 0)

    def test_non_square_rejected(self):
        with pytest.raises(ValidationError):
            bottom_eigenvalues(np.ones((2, 3)), 1)

    def test_unknown_method(self):
        laplacian = normalized_laplacian(cycle_graph(5))
        with pytest.raises(ValidationError):
            bottom_eigenvalues(laplacian, 2, method="magic")

    def test_lanczos_near_full_falls_back(self):
        """Requesting nearly all eigenpairs silently uses the dense path."""
        laplacian = normalized_laplacian(cycle_graph(6))
        values = bottom_eigenvalues(laplacian, 5, method="lanczos")
        np.testing.assert_allclose(values, cycle_eigenvalues(6, 5), atol=1e-8)

    def test_deterministic_with_seed(self):
        laplacian = normalized_laplacian(cycle_graph(50))
        a = bottom_eigenvalues(laplacian, 4, method="lanczos", seed=7)
        b = bottom_eigenvalues(laplacian, 4, method="lanczos", seed=7)
        np.testing.assert_array_equal(a, b)


class TestFiedler:
    def test_connected_positive(self):
        laplacian = normalized_laplacian(cycle_graph(12))
        assert fiedler_value(laplacian) > 0

    def test_disconnected_zero(self):
        two_triangles = sp.block_diag([
            np.ones((3, 3)) - np.eye(3),
            np.ones((3, 3)) - np.eye(3),
        ]).tocsr()
        laplacian = normalized_laplacian(two_triangles)
        assert fiedler_value(laplacian) == pytest.approx(0.0, abs=1e-9)

    def test_complete_graph_largest_fiedler(self):
        """K_n maximizes lambda_2 among graphs on n nodes."""
        complete = sp.csr_matrix(np.ones((8, 8)) - np.eye(8))
        cycle = cycle_graph(8)
        assert fiedler_value(normalized_laplacian(complete)) > fiedler_value(
            normalized_laplacian(cycle)
        )
