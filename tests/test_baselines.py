"""Tests for the reimplemented baselines.

Each baseline must (1) run on a small MVAG, (2) return valid labels or
embeddings, and (3) clearly beat random guessing on an easy planted
partition — the minimum bar for "the reimplementation does what the
original family does".  Scaling limits of the quadratic/GNN families are
also asserted (MemoryError beyond their node caps, mirroring the paper's
'-' table entries).
"""

import numpy as np
import pytest

from repro.baselines import CLUSTERING_BASELINES, EMBEDDING_BASELINES
from repro.baselines.common import (
    all_view_adjacencies,
    concatenated_attributes,
    feature_matrix,
    filtered_view_features,
    low_pass_filter,
    random_projection,
    structural_features,
)
from repro.core.mvag import MVAG
from repro.evaluation.classification import evaluate_embedding
from repro.evaluation.clustering_metrics import adjusted_rand_index


class TestCommonHelpers:
    def test_random_projection_cap(self, easy_mvag):
        wide = np.random.default_rng(0).standard_normal((30, 500))
        assert random_projection(wide, 32, seed=0).shape == (30, 32)

    def test_random_projection_passthrough(self):
        narrow = np.ones((10, 4))
        np.testing.assert_array_equal(random_projection(narrow, 16), narrow)

    def test_concatenated_attributes(self, easy_mvag):
        features = concatenated_attributes(easy_mvag, target_dim=64, seed=0)
        assert features.shape[0] == easy_mvag.n_nodes

    def test_concatenated_attributes_none_without_attrs(self):
        mvag = MVAG(graph_views=[np.eye(6)[::-1]])
        assert concatenated_attributes(mvag) is None

    def test_structural_features_fallback(self):
        mvag = MVAG(graph_views=[np.eye(6)[::-1]])
        features = feature_matrix(mvag, seed=0)
        assert features.shape[0] == 6
        np.testing.assert_array_equal(
            features, structural_features(mvag, dim=64, seed=0)
        )

    def test_low_pass_filter_smooths(self, ring_of_cliques):
        adjacency, labels = ring_of_cliques
        rng = np.random.default_rng(0)
        noisy = rng.standard_normal((adjacency.shape[0], 4))
        smoothed = low_pass_filter(adjacency, noisy, order=4)
        # Within-clique variance must shrink relative to raw noise.
        def within_var(features):
            return np.mean(
                [features[labels == c].var() for c in np.unique(labels)]
            )
        assert within_var(smoothed) < within_var(noisy)

    def test_filtered_view_features_count(self, easy_mvag):
        features = filtered_view_features(easy_mvag, seed=0)
        assert len(features) == easy_mvag.n_views

    def test_all_view_adjacencies_count(self, easy_mvag):
        adjacencies = all_view_adjacencies(easy_mvag, knn_k=5)
        assert len(adjacencies) == easy_mvag.n_views


class TestClusteringBaselines:
    @pytest.mark.parametrize("name", sorted(CLUSTERING_BASELINES))
    def test_valid_labels(self, easy_mvag, name):
        labels = CLUSTERING_BASELINES[name](easy_mvag, 3, seed=0)
        assert labels.shape == (easy_mvag.n_nodes,)
        assert labels.dtype.kind == "i"
        assert set(np.unique(labels)) <= set(range(3))

    @pytest.mark.parametrize("name", sorted(CLUSTERING_BASELINES))
    def test_beats_random(self, easy_mvag, name):
        labels = CLUSTERING_BASELINES[name](easy_mvag, 3, seed=0)
        ari = adjusted_rand_index(easy_mvag.labels, labels)
        assert ari > 0.2, f"{name} should beat random guessing (ARI={ari:.3f})"

    @pytest.mark.parametrize("name", sorted(CLUSTERING_BASELINES))
    def test_deterministic(self, easy_mvag, name):
        a = CLUSTERING_BASELINES[name](easy_mvag, 3, seed=7)
        b = CLUSTERING_BASELINES[name](easy_mvag, 3, seed=7)
        np.testing.assert_array_equal(a, b)


class TestEmbeddingBaselines:
    @pytest.mark.parametrize("name", sorted(EMBEDDING_BASELINES))
    def test_valid_embedding(self, easy_mvag, name):
        embedding = EMBEDDING_BASELINES[name](easy_mvag, 16, seed=0)
        assert embedding.shape == (easy_mvag.n_nodes, 16)
        assert np.all(np.isfinite(embedding))

    @pytest.mark.parametrize("name", sorted(EMBEDDING_BASELINES))
    def test_classifies_above_chance(self, easy_mvag, name):
        embedding = EMBEDDING_BASELINES[name](easy_mvag, 16, seed=0)
        report = evaluate_embedding(embedding, easy_mvag.labels, seed=0)
        assert report["micro_f1"] > 0.5, name


class TestScalingLimits:
    def _huge_stub(self, n=15000):
        """An MVAG whose size exceeds the quadratic baselines' caps.

        Uses a trivially sparse diagonal-block structure so construction
        itself stays cheap."""
        import scipy.sparse as sp

        adjacency = sp.identity(n, format="csr")
        adjacency = sp.hstack  # placate linters; replaced below
        ring = sp.diags([np.ones(n - 1), np.ones(n - 1)], [1, -1]).tocsr()
        return MVAG(graph_views=[ring], labels=np.zeros(n, dtype=int))

    def test_mcgc_oom_guard(self):
        from repro.baselines.mcgc import mcgc_cluster

        with pytest.raises(MemoryError):
            mcgc_cluster(self._huge_stub(), 2)

    def test_magc_oom_guard(self):
        from repro.baselines.magc import magc_cluster

        with pytest.raises(MemoryError):
            magc_cluster(self._huge_stub(), 2)

    def test_twocmv_oom_guard(self):
        from repro.baselines.twocmv import twocmv_cluster

        with pytest.raises(MemoryError):
            twocmv_cluster(self._huge_stub(), 2)

    def test_o2mac_oom_guard(self):
        from repro.baselines.o2mac import o2mac_cluster

        with pytest.raises(MemoryError):
            o2mac_cluster(self._huge_stub(7000), 2)


class TestWmscWeighting:
    def test_agreeing_views_dominate(self, hetero_mvag):
        """WMSC must still recover structure when one view is noise."""
        from repro.baselines.wmsc import wmsc_cluster

        labels = wmsc_cluster(hetero_mvag, 4, seed=0)
        assert adjusted_rand_index(hetero_mvag.labels, labels) > 0.2


class TestO2macSelection:
    def test_informative_view_selected(self, easy_mvag):
        """The strength-0.9 view (index 0) must be picked over noise."""
        from repro.baselines.o2mac import _informative_view_index

        assert _informative_view_index(easy_mvag, 3, seed=0) == 0
