"""Unit tests of the consistent-hash ring (DESIGN.md §14).

The load-bearing properties: deterministic placement shared by every
router without coordination, bounded remapping on membership changes
(the cache-warmth argument), distinct replica sets, and reasonable
balance across nodes.
"""

from __future__ import annotations

import pytest

from repro.serve.ring import (
    DEFAULT_VNODES,
    HashRing,
    hash64,
    remap_fraction,
    route_key,
)
from repro.utils.errors import ValidationError

NODES = [f"10.0.0.{i}:7000" for i in range(1, 6)]
KEYS = [f"profile_{i}@{i % 7}" for i in range(2000)]


class TestPlacement:
    def test_lookup_is_deterministic(self):
        a = HashRing(NODES)
        b = HashRing(list(reversed(NODES)))  # insertion order irrelevant
        for key in KEYS[:200]:
            assert a.lookup(key, 3) == b.lookup(key, 3)

    def test_replicas_are_distinct_nodes(self):
        ring = HashRing(NODES)
        for key in KEYS[:500]:
            replicas = ring.lookup(key, 3)
            assert len(replicas) == len(set(replicas)) == 3

    def test_count_above_node_count_returns_all(self):
        ring = HashRing(NODES[:2])
        assert sorted(ring.lookup("k", 5)) == sorted(NODES[:2])

    def test_preference_orders_every_node(self):
        ring = HashRing(NODES)
        order = ring.preference("some-key")
        assert sorted(order) == sorted(NODES)

    def test_balance_within_factor_of_mean(self):
        ring = HashRing(NODES)
        counts = {node: 0 for node in NODES}
        for key in KEYS:
            counts[ring.lookup(key)[0]] += 1
        mean = len(KEYS) / len(NODES)
        for node, count in counts.items():
            assert 0.5 * mean <= count <= 1.6 * mean, (node, count)

    def test_hash64_is_stable(self):
        assert hash64("abc") == hash64("abc")
        assert hash64("abc") != hash64("abd")


class TestMembership:
    def test_remove_remaps_bounded_fraction(self):
        # The churn gate: removing 1 of N remaps ~1/N of keys (<= 1.5/N).
        for n in (3, 4, 5):
            nodes = NODES[:n]
            before = HashRing(nodes)
            after = HashRing(nodes[:-1])
            frac = remap_fraction(before, after, KEYS)
            assert frac <= 1.5 / n, (n, frac)
            assert frac > 0  # the removed node's keys did move

    def test_survivors_keep_their_keys(self):
        before = HashRing(NODES)
        after = HashRing(NODES[:-1])
        removed = NODES[-1]
        for key in KEYS[:500]:
            old = before.lookup(key)[0]
            if old != removed:
                assert after.lookup(key)[0] == old

    def test_single_failure_leaves_live_replica(self):
        # replication >= 2: any one dead node leaves every key a replica.
        ring = HashRing(NODES)
        for dead in NODES:
            for key in KEYS[:200]:
                replicas = ring.lookup(key, 2)
                assert any(node != dead for node in replicas)

    def test_add_then_remove_restores_placement(self):
        ring = HashRing(NODES)
        baseline = [ring.lookup(key)[0] for key in KEYS[:300]]
        ring.add("10.0.0.99:7000")
        ring.remove("10.0.0.99:7000")
        assert [ring.lookup(key)[0] for key in KEYS[:300]] == baseline

    def test_membership_protocol(self):
        ring = HashRing(NODES[:2])
        assert len(ring) == 2
        assert NODES[0] in ring and NODES[3] not in ring
        assert ring.nodes == sorted(NODES[:2])


class TestValidation:
    def test_duplicate_node_rejected(self):
        with pytest.raises(ValidationError):
            HashRing([NODES[0], NODES[0]])

    def test_empty_ring_lookup_rejected(self):
        with pytest.raises(ValidationError):
            HashRing([]).lookup("k")

    def test_remove_unknown_rejected(self):
        with pytest.raises(ValidationError):
            HashRing(NODES[:2]).remove("nope:1")

    def test_bad_vnodes_rejected(self):
        with pytest.raises(ValidationError):
            HashRing(NODES[:2], vnodes=0)

    def test_bad_node_rejected(self):
        with pytest.raises(ValidationError):
            HashRing([""])
        with pytest.raises(ValidationError):
            HashRing([42])  # type: ignore[list-item]

    def test_bad_lookup_count_rejected(self):
        with pytest.raises(ValidationError):
            HashRing(NODES[:2]).lookup("k", 0)

    def test_default_vnodes(self):
        assert HashRing(NODES[:1]).vnodes == DEFAULT_VNODES


class TestRouteKey:
    def test_route_key_matches_dataset_cache_identity(self):
        assert route_key({"profile": "rm_small", "seed": 3}) == "rm_small@3"
        assert route_key({"profile": "rm_small"}) == "rm_small@0"

    def test_jobs_differing_only_in_params_share_a_key(self):
        a = {"kind": "objective", "profile": "p", "seed": 1, "k": 2}
        b = {"kind": "cluster", "profile": "p", "seed": 1, "k": 5}
        assert route_key(a) == route_key(b)
