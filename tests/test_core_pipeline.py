"""End-to-end pipeline tests: integrate -> cluster / embed."""

import numpy as np
import pytest

from repro.core.mvag import MVAG
from repro.core.pipeline import cluster_mvag, embed_mvag
from repro.evaluation.classification import evaluate_embedding
from repro.evaluation.clustering_metrics import adjusted_rand_index
from repro.utils.errors import ValidationError


class TestClusterPipeline:
    def test_recovers_planted_partition(self, easy_mvag):
        output = cluster_mvag(easy_mvag, method="sgla+")
        ari = adjusted_rand_index(easy_mvag.labels, output.labels)
        assert ari > 0.9

    def test_sgla_recovers_partition(self, easy_mvag):
        output = cluster_mvag(easy_mvag, method="sgla")
        ari = adjusted_rand_index(easy_mvag.labels, output.labels)
        assert ari > 0.9

    def test_label_range(self, easy_mvag):
        output = cluster_mvag(easy_mvag, k=3)
        assert set(np.unique(output.labels)) <= set(range(3))

    def test_kmeans_assignment(self, easy_mvag):
        output = cluster_mvag(easy_mvag, assign="kmeans")
        ari = adjusted_rand_index(easy_mvag.labels, output.labels)
        assert ari > 0.8

    def test_beats_single_noisy_view(self, hetero_mvag):
        """Weighted integration must beat clustering the noisy view alone."""
        from repro.cluster.spectral import spectral_clustering
        from repro.core.laplacian import normalized_laplacian

        integrated = cluster_mvag(hetero_mvag, method="sgla+")
        ari_integrated = adjusted_rand_index(
            hetero_mvag.labels, integrated.labels
        )
        noisy_lap = normalized_laplacian(hetero_mvag.graph_views[2])
        noisy_labels = spectral_clustering(noisy_lap, k=4, seed=0)
        ari_noisy = adjusted_rand_index(hetero_mvag.labels, noisy_labels)
        assert ari_integrated > ari_noisy

    def test_unlabeled_requires_k(self, easy_mvag):
        unlabeled = MVAG(
            graph_views=easy_mvag.graph_views,
            attribute_views=easy_mvag.attribute_views,
        )
        with pytest.raises(ValidationError):
            cluster_mvag(unlabeled)
        output = cluster_mvag(unlabeled, k=3)
        assert output.labels.shape == (easy_mvag.n_nodes,)


class TestEmbedPipeline:
    def test_embedding_shape(self, easy_mvag):
        output = embed_mvag(easy_mvag, dim=16)
        assert output.embedding.shape == (easy_mvag.n_nodes, 16)
        assert np.all(np.isfinite(output.embedding))

    def test_embedding_classifies_well(self, easy_mvag):
        output = embed_mvag(easy_mvag, dim=16)
        report = evaluate_embedding(output.embedding, easy_mvag.labels, seed=0)
        assert report["micro_f1"] > 0.9

    def test_auto_backend_netmf_small(self, easy_mvag):
        output = embed_mvag(easy_mvag, dim=8)
        assert output.backend == "netmf"

    def test_explicit_sketchne(self, easy_mvag):
        output = embed_mvag(easy_mvag, dim=8, backend="sketchne")
        assert output.backend == "sketchne"
        assert output.embedding.shape == (easy_mvag.n_nodes, 8)

    def test_unknown_backend(self, easy_mvag):
        with pytest.raises(ValidationError):
            embed_mvag(easy_mvag, dim=8, backend="word2vec")

    def test_sketchne_quality(self, easy_mvag):
        output = embed_mvag(easy_mvag, dim=16, backend="sketchne")
        report = evaluate_embedding(output.embedding, easy_mvag.labels, seed=0)
        assert report["micro_f1"] > 0.85
