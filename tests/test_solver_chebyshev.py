"""Tests for the Chebyshev-filtered spectral-solver backend."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.fastpath import StackedLaplacians
from repro.core.lanczos import lanczos_spectral_interval
from repro.core.laplacian import (
    aggregate_laplacians,
    build_view_laplacians,
    normalized_laplacian,
)
from repro.datasets.generator import generate_mvag
from repro.datasets.running_example import running_example_mvag
from repro.solvers import (
    EigenProblem,
    SolverContext,
    bottom_eigenpairs,
    bottom_eigenvalues,
    get_backend,
    resolve_method,
)
from repro.solvers.chebyshev import ChebyshevBackend


def running_example_laplacian(weights=(0.6, 0.4)):
    mvag = running_example_mvag()
    laplacians = [normalized_laplacian(a) for a in mvag.graph_views]
    return aggregate_laplacians(laplacians, np.asarray(weights))


def generated_laplacian(n=500, seed=3, weights=(0.5, 0.3, 0.2)):
    mvag = generate_mvag(
        n_nodes=n,
        n_clusters=3,
        graph_view_strengths=[0.8, 0.3],
        attribute_view_dims=[16],
        seed=seed,
    )
    laplacians = build_view_laplacians(mvag, knn_k=5)
    return aggregate_laplacians(laplacians, np.asarray(weights)), laplacians


class TestParity:
    def test_running_example_direct_backend(self):
        """The filter itself (no dense fallback) matches dense to 1e-6 on
        the paper's running example."""
        laplacian = running_example_laplacian()
        reference, ref_vectors = bottom_eigenpairs(laplacian, 3, method="dense")
        result = ChebyshevBackend().solve(EigenProblem(laplacian, 3, seed=0))
        np.testing.assert_allclose(result.values, reference, atol=1e-6)
        projector = result.vectors @ result.vectors.T
        ref_projector = ref_vectors @ ref_vectors.T
        np.testing.assert_allclose(projector, ref_projector, atol=1e-6)

    def test_generated_graph_through_registry(self):
        laplacian, _ = generated_laplacian()
        reference = bottom_eigenvalues(laplacian, 4, method="dense")
        values = bottom_eigenvalues(laplacian, 4, method="chebyshev", seed=0)
        np.testing.assert_allclose(values, reference, atol=1e-8)

    def test_eigenvectors_residuals(self):
        laplacian, _ = generated_laplacian()
        values, vectors = bottom_eigenpairs(
            laplacian, 4, method="chebyshev", seed=0
        )
        for i in range(4):
            residual = laplacian @ vectors[:, i] - values[i] * vectors[:, i]
            assert np.linalg.norm(residual) < 1e-7

    def test_matrix_free_operand(self):
        laplacian, laplacians = generated_laplacian()
        operator = StackedLaplacians(laplacians).operator(
            np.array([0.5, 0.3, 0.2])
        )
        reference = bottom_eigenvalues(laplacian, 4, method="dense")
        values = bottom_eigenvalues(operator, 4, method="chebyshev", seed=0)
        np.testing.assert_allclose(values, reference, atol=1e-8)

    def test_clustered_gap_spectrum(self):
        """The documented target workload: tightly clustered bottom
        eigenvalues below a large spectral gap (t = k)."""
        mvag = generate_mvag(
            n_nodes=700,
            n_clusters=8,
            graph_view_strengths=[0.95, 0.9],
            attribute_view_dims=[16],
            seed=1,
        )
        laplacians = build_view_laplacians(mvag, knn_k=5)
        laplacian = aggregate_laplacians(laplacians, np.array([0.5, 0.3, 0.2]))
        reference = bottom_eigenvalues(laplacian, 8, method="dense")
        values = bottom_eigenvalues(laplacian, 8, method="chebyshev", seed=0)
        np.testing.assert_allclose(values, reference, atol=1e-8)

    def test_coarse_tolerance_accuracy_scales(self):
        """A relaxed tolerance must still deliver that tolerance."""
        laplacian, _ = generated_laplacian()
        reference = bottom_eigenvalues(laplacian, 4, method="dense")
        values = bottom_eigenvalues(
            laplacian, 4, method="chebyshev", tol=1e-4, seed=0
        )
        np.testing.assert_allclose(values, reference, atol=2e-4)


class TestDispatch:
    def test_small_n_falls_back_dense(self):
        """Like lobpcg, the block solver reroutes tiny problems."""
        assert resolve_method(8, 3, "chebyshev") == "dense"
        assert resolve_method(24, 5, "chebyshev") == "dense"
        assert resolve_method(1000, 4, "chebyshev") == "chebyshev"

    def test_running_example_registry_path_is_dense(self):
        """End-to-end: the running example (n=8) requested as chebyshev
        runs (via dense) and is exact."""
        laplacian = running_example_laplacian()
        reference = bottom_eigenvalues(laplacian, 3, method="dense")
        values = bottom_eigenvalues(laplacian, 3, method="chebyshev", seed=0)
        np.testing.assert_allclose(values, reference, atol=1e-10)

    def test_operator_stays_chebyshev(self):
        assert (
            resolve_method(5000, 5, "chebyshev", is_operator=True)
            == "chebyshev"
        )


class TestWarmStartAndStats:
    def test_counts_matvecs(self):
        laplacian, _ = generated_laplacian()
        result = ChebyshevBackend().solve(EigenProblem(laplacian, 4, seed=0))
        assert result.matvecs > 0

    def test_returns_full_ritz_block(self):
        """The backend hands back its guard-padded block, even for
        values-only solves, so contexts can warm-start with it."""
        laplacian, _ = generated_laplacian()
        result = ChebyshevBackend().solve(
            EigenProblem(laplacian, 4, seed=0, want_vectors=False)
        )
        assert result.vectors is None
        assert result.ritz_block is not None
        assert result.ritz_block.shape[0] == laplacian.shape[0]
        assert result.ritz_block.shape[1] > 4  # wanted + guard columns
        assert result.warm_block is result.ritz_block

    def test_warm_block_reduces_matvecs(self):
        """A nearby solve seeded with the previous full block converges
        in fewer operator applications than a cold solve."""
        _, laplacians = generated_laplacian(n=800)
        first = aggregate_laplacians(laplacians, np.array([0.5, 0.3, 0.2]))
        second = aggregate_laplacians(laplacians, np.array([0.49, 0.31, 0.2]))
        backend = ChebyshevBackend()
        seed_result = backend.solve(EigenProblem(first, 4, seed=0))
        cold = backend.solve(EigenProblem(second, 4, seed=0))
        warm = backend.solve(
            EigenProblem(second, 4, seed=0, v0=seed_result.ritz_block)
        )
        assert warm.matvecs < cold.matvecs
        np.testing.assert_allclose(warm.values, cold.values, atol=1e-8)

    def test_context_chains_ritz_blocks(self):
        """SolverContext keeps the full block between solves."""
        _, laplacians = generated_laplacian(n=800)
        first = aggregate_laplacians(laplacians, np.array([0.5, 0.3, 0.2]))
        second = aggregate_laplacians(laplacians, np.array([0.49, 0.31, 0.2]))
        context = SolverContext(method="chebyshev", seed=0)
        context.eigenvalues(first, 4)
        block = context.warm_block(800)
        assert block is not None and block.shape[1] > 4
        context.eigenvalues(second, 4)
        assert context.stats.warm_solves == 1

    def test_interval_hint_saves_estimation_matvecs(self):
        """A warm solve carrying the previous solve's spectral interval
        skips the Lanczos interval run (and stays accurate)."""
        _, laplacians = generated_laplacian(n=800)
        first = aggregate_laplacians(laplacians, np.array([0.5, 0.3, 0.2]))
        second = aggregate_laplacians(laplacians, np.array([0.49, 0.31, 0.2]))
        backend = ChebyshevBackend()
        seed_result = backend.solve(EigenProblem(first, 4, seed=0))
        assert seed_result.spectral_interval is not None
        without_hint = backend.solve(
            EigenProblem(second, 4, seed=0, v0=seed_result.ritz_block)
        )
        with_hint = backend.solve(
            EigenProblem(
                second, 4, seed=0, v0=seed_result.ritz_block,
                interval=seed_result.spectral_interval,
            )
        )
        assert with_hint.matvecs < without_hint.matvecs
        np.testing.assert_allclose(
            with_hint.values, without_hint.values, atol=1e-8
        )
        # The propagated interval is the raw hint (no compounding).
        assert with_hint.spectral_interval == seed_result.spectral_interval

    def test_stale_interval_hint_recovers(self):
        """A hint whose upper edge undershoots the true spectrum is
        detected (block Ritz values exceed it) and re-estimated; the
        solve stays accurate."""
        laplacian, _ = generated_laplacian()
        reference = bottom_eigenvalues(laplacian, 4, method="dense")
        backend = ChebyshevBackend()
        warm = backend.solve(EigenProblem(laplacian, 4, seed=0))
        result = backend.solve(
            EigenProblem(
                laplacian, 4, seed=0, v0=warm.ritz_block,
                interval=(0.0, 0.3),  # far below the true upper edge
            )
        )
        np.testing.assert_allclose(result.values, reference, atol=1e-8)
        # The refreshed estimate, not the bogus hint, is propagated.
        assert result.spectral_interval[1] > 0.5

    def test_context_chains_interval(self):
        _, laplacians = generated_laplacian(n=800)
        first = aggregate_laplacians(laplacians, np.array([0.5, 0.3, 0.2]))
        second = aggregate_laplacians(laplacians, np.array([0.49, 0.31, 0.2]))
        chained = SolverContext(method="chebyshev", seed=0)
        chained.eigenvalues(first, 4)
        chained.eigenvalues(second, 4)
        fresh = SolverContext(method="chebyshev", seed=0)
        fresh.eigenvalues(first, 4)
        fresh.invalidate()  # drops warm block AND interval
        fresh.eigenvalues(second, 4)
        assert chained.stats.matvecs < fresh.stats.matvecs

    def test_determinism(self):
        laplacian, _ = generated_laplacian()
        backend = ChebyshevBackend()
        a = backend.solve(EigenProblem(laplacian, 4, seed=0))
        b = backend.solve(EigenProblem(laplacian, 4, seed=0))
        np.testing.assert_array_equal(a.values, b.values)
        np.testing.assert_array_equal(a.vectors, b.vectors)

    def test_maxiter_caps_outer_rounds(self):
        laplacian, _ = generated_laplacian()
        capped = ChebyshevBackend().solve(
            EigenProblem(laplacian, 4, seed=0, maxiter=1)
        )
        free = ChebyshevBackend().solve(EigenProblem(laplacian, 4, seed=0))
        assert capped.matvecs < free.matvecs
        assert np.all(np.isfinite(capped.values))


class TestSpectralInterval:
    def test_bounds_contain_spectrum(self):
        laplacian, _ = generated_laplacian(n=300)
        exact = np.linalg.eigvalsh(laplacian.toarray())
        lower, upper = lanczos_spectral_interval(laplacian, steps=12, seed=0)
        assert lower <= exact[0] + 1e-8
        assert upper >= exact[-1] - 1e-8

    def test_return_basis_shapes(self):
        laplacian, _ = generated_laplacian(n=300)
        lower, upper, theta, ritz = lanczos_spectral_interval(
            laplacian, steps=10, seed=0, return_basis=True
        )
        assert theta.shape == (10,)
        assert ritz.shape == (300, 10)
        # Ritz vectors are orthonormal.
        gram = ritz.T @ ritz
        np.testing.assert_allclose(gram, np.eye(10), atol=1e-10)

    def test_one_by_one_operator(self):
        matrix = sp.csr_matrix(np.array([[0.5]]))
        lower, upper = lanczos_spectral_interval(matrix, steps=4, seed=0)
        assert lower == 0.0 and upper == 0.5
