"""Tests for the quadratic interpolation surrogate (Eq. 7-9)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampling import adjusted_samples, interpolation_samples
from repro.core.surrogate import QuadraticSurrogate, fit_surrogate
from repro.utils.errors import ShapeError, ValidationError


def quadratic_truth(r, seed=0):
    """A random ground-truth quadratic over the reduced weights."""
    rng = np.random.default_rng(seed)
    dim = r - 1
    hessian = rng.standard_normal((dim, dim))
    hessian = hessian @ hessian.T  # PSD
    linear = rng.standard_normal(dim)
    constant = float(rng.standard_normal())

    def func(weights):
        reduced = np.asarray(weights)[:-1]
        return float(reduced @ hessian @ reduced + linear @ reduced + constant)

    return func


class TestExactRecovery:
    @pytest.mark.parametrize("r", [2, 3, 4])
    def test_interpolates_samples_exactly(self, r):
        truth = quadratic_truth(r, seed=r)
        samples = interpolation_samples(r)
        values = [truth(s) for s in samples]
        surrogate = fit_surrogate(samples, values)
        for sample, value in zip(samples, values):
            assert surrogate(sample) == pytest.approx(value, abs=1e-6)

    def test_recovers_exact_quadratic_with_enough_samples(self):
        """With >= #coefficients generic samples, ridge mode recovers the
        quadratic everywhere (not just at samples)."""
        r = 3
        truth = quadratic_truth(r, seed=42)
        rng = np.random.default_rng(0)
        samples = [rng.dirichlet(np.ones(r)) for _ in range(30)]
        values = [truth(s) for s in samples]
        surrogate = fit_surrogate(samples, values, alpha=1e-10, mode="ridge")
        for _ in range(20):
            probe = rng.dirichlet(np.ones(r))
            assert surrogate(probe) == pytest.approx(truth(probe), abs=1e-4)

    @given(st.integers(min_value=2, max_value=6), st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_interpolation_property(self, r, seed):
        rng = np.random.default_rng(seed)
        samples = interpolation_samples(r)
        values = rng.standard_normal(len(samples))
        surrogate = fit_surrogate(samples, values)
        recovered = np.array([surrogate(s) for s in samples])
        np.testing.assert_allclose(recovered, values, atol=1e-5)


class TestThetaMatrix:
    def test_upper_triangular_layout(self):
        samples = interpolation_samples(3)
        values = [1.0, 2.0, 3.0, 4.0]
        surrogate = fit_surrogate(samples, values)
        theta = surrogate.theta_matrix()
        assert theta.shape == (3, 3)
        assert np.allclose(theta, np.triu(theta))

    def test_matrix_form_matches_eval(self):
        """Eq. (8): [u, 1] Theta [u, 1]^T with symmetrized cross terms
        equals the flat evaluation."""
        samples = interpolation_samples(3)
        values = [0.5, 1.5, -0.5, 2.0]
        surrogate = fit_surrogate(samples, values)
        theta = surrogate.theta_matrix()
        for sample in samples:
            extended = np.concatenate([sample[:-1], [1.0]])
            assert extended @ theta @ extended == pytest.approx(
                surrogate(sample), abs=1e-8
            )


class TestGradient:
    def test_matches_finite_differences(self):
        samples = interpolation_samples(4)
        rng = np.random.default_rng(3)
        values = rng.standard_normal(len(samples))
        surrogate = fit_surrogate(samples, values)
        point = np.array([0.3, 0.3, 0.2, 0.2])
        analytic = surrogate.gradient(point)
        step = 1e-6
        for i in range(3):
            bumped = point.copy()
            bumped[i] += step
            numeric = (surrogate(bumped) - surrogate(point)) / step
            assert analytic[i] == pytest.approx(numeric, abs=1e-4)


class TestValidation:
    def test_empty_samples(self):
        with pytest.raises(ValidationError):
            fit_surrogate([], [])

    def test_mismatched_lengths(self):
        with pytest.raises(ShapeError):
            fit_surrogate(interpolation_samples(3), [1.0, 2.0])

    def test_single_view_rejected(self):
        with pytest.raises(ValidationError):
            fit_surrogate([np.array([1.0])], [1.0])

    def test_negative_alpha(self):
        with pytest.raises(ValidationError):
            fit_surrogate(interpolation_samples(2), [1.0, 2.0, 3.0], alpha=-1)

    def test_unknown_mode(self):
        with pytest.raises(ValidationError):
            fit_surrogate(interpolation_samples(2), [1, 2, 3], mode="banana")

    def test_wrong_eval_length(self):
        surrogate = fit_surrogate(interpolation_samples(3), [1, 2, 3, 4])
        with pytest.raises(ShapeError):
            surrogate(np.array([0.5, 0.5]))


class TestModes:
    def test_auto_picks_interpolate_for_default_samples(self):
        surrogate = fit_surrogate(interpolation_samples(3), [1, 2, 3, 4])
        assert surrogate.mode == "interpolate"

    def test_auto_picks_ridge_when_overdetermined(self):
        rng = np.random.default_rng(1)
        samples = adjusted_samples(3, delta_s=10, rng=1)
        values = rng.standard_normal(len(samples))
        surrogate = fit_surrogate(samples, values)
        assert surrogate.mode == "ridge"

    def test_duplicate_samples_handled(self):
        samples = interpolation_samples(3) + [interpolation_samples(3)[0]]
        values = [1.0, 2.0, 3.0, 4.0, 1.0]
        surrogate = fit_surrogate(samples, values, mode="interpolate")
        assert np.all(np.isfinite(surrogate.coefficients))
