"""Shared fixtures for the test suite.

Fixtures are deliberately small (tens to a few hundred nodes) so the whole
suite stays fast; scaling behaviour is exercised by the benchmarks instead.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.laplacian import build_view_laplacians
from repro.datasets.generator import generate_mvag
from repro.datasets.running_example import running_example_mvag


@pytest.fixture(scope="session")
def easy_mvag():
    """3 clusters, one strong view, one noisy view, one attribute view."""
    return generate_mvag(
        n_nodes=150,
        n_clusters=3,
        graph_view_strengths=[0.9, 0.15],
        attribute_view_dims=[16],
        attribute_view_signals=[0.7],
        seed=11,
    )


@pytest.fixture(scope="session")
def easy_laplacians(easy_mvag):
    """View Laplacians of :func:`easy_mvag`."""
    return build_view_laplacians(easy_mvag, knn_k=8)


@pytest.fixture(scope="session")
def hetero_mvag():
    """4 clusters with strongly heterogeneous view quality."""
    return generate_mvag(
        n_nodes=240,
        n_clusters=4,
        graph_view_strengths=[0.85, 0.1, 0.05],
        attribute_view_dims=[24],
        attribute_view_signals=[0.4],
        avg_degree=12,
        seed=23,
    )


@pytest.fixture(scope="session")
def running_example():
    """The paper's Fig. 2 8-node MVAG."""
    return running_example_mvag()


@pytest.fixture()
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def ring_of_cliques():
    """Four 10-cliques connected in a ring — unambiguous 4 clusters."""
    blocks = []
    n_cliques, clique_size = 4, 10
    n = n_cliques * clique_size
    dense = np.zeros((n, n))
    for c in range(n_cliques):
        start = c * clique_size
        dense[start : start + clique_size, start : start + clique_size] = 1.0
    np.fill_diagonal(dense, 0.0)
    for c in range(n_cliques):
        a = c * clique_size
        b = ((c + 1) % n_cliques) * clique_size
        dense[a, b] = dense[b, a] = 1.0
    labels = np.repeat(np.arange(n_cliques), clique_size)
    return sp.csr_matrix(dense), labels
