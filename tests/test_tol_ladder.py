"""Tests for the trust-region-driven tolerance ladder (DESIGN.md §8)."""

import numpy as np
import pytest

from repro.core.objective import (
    LADDER_COARSE_TOL,
    LADDER_TIGHT_TOL,
    SpectralObjective,
    ladder_tolerance,
)
from repro.core.laplacian import build_view_laplacians
from repro.core.sgla import SGLA, SGLAConfig
from repro.core.sgla_plus import SGLAPlus
from repro.datasets.generator import generate_mvag
from repro.datasets.profiles import load_profile_mvag
from repro.optim.cobyla import LinearTrustRegion
from repro.optim.driver import minimize_on_simplex
from repro.solvers import EigenProblem, SolverContext
from repro.utils.errors import ValidationError


class TestLadderMapping:
    def test_coarse_at_rho_start(self):
        assert ladder_tolerance(0.25, 0.25, 1e-3) == LADDER_COARSE_TOL
        assert ladder_tolerance(1.0, 0.25, 1e-3) == LADDER_COARSE_TOL

    def test_backend_default_at_rho_end(self):
        assert ladder_tolerance(1e-3, 0.25, 1e-3) == 0.0
        assert ladder_tolerance(1e-5, 0.25, 1e-3) == 0.0

    def test_monotone_nonincreasing(self):
        rhos = np.geomspace(0.25, 1e-3, 40)
        tols = [ladder_tolerance(rho, 0.25, 1e-3) for rho in rhos]
        nonzero = [t for t in tols if t > 0]
        assert all(a >= b for a, b in zip(nonzero, nonzero[1:]))
        assert tols[0] == LADDER_COARSE_TOL
        assert tols[-1] == 0.0

    def test_snaps_to_zero_below_tight(self):
        for rho in np.geomspace(0.25, 1e-3, 60):
            tol = ladder_tolerance(rho, 0.25, 1e-3)
            assert tol == 0.0 or tol > LADDER_TIGHT_TOL

    def test_degenerate_radii_are_exact(self):
        assert ladder_tolerance(0.1, 0.25, 0.0) == 0.0
        assert ladder_tolerance(0.1, 1e-3, 1e-3) == 0.0


class TestSolverContextTolerance:
    def test_set_tolerance_updates_and_counts(self):
        context = SolverContext(seed=0)
        assert context.tol == 0.0
        context.set_tolerance(1e-4)
        assert context.tol == 1e-4
        context.set_tolerance(1e-4)  # no-op, not a change
        context.set_tolerance(0.0)
        assert context.tol == 0.0
        assert context.stats.tolerance_updates == 2

    def test_negative_tolerance_rejected(self):
        with pytest.raises(ValidationError):
            SolverContext(seed=0).set_tolerance(-1e-6)

    def test_coarse_solves_counted(self):
        mvag = generate_mvag(
            n_nodes=120, n_clusters=2, graph_view_strengths=[0.8, 0.3],
            seed=0,
        )
        laplacians = build_view_laplacians(mvag, knn_k=5)
        context = SolverContext(method="lanczos", seed=0)
        context.eigenvalues(laplacians[0], 3)
        context.set_tolerance(1e-4)
        context.eigenvalues(laplacians[1], 3)
        assert context.stats.coarse_solves == 1
        assert "coarse" in context.stats.summary()

    def test_problem_with_tol(self):
        mvag = generate_mvag(
            n_nodes=60, n_clusters=2, graph_view_strengths=[0.8], seed=0
        )
        laplacian = build_view_laplacians(mvag, knn_k=5)[0]
        problem = EigenProblem(laplacian, 2, tol=1e-3)
        retargeted = problem.with_tol(0.0)
        assert retargeted.tol == 0.0 and problem.tol == 1e-3
        assert retargeted.operand is problem.operand


class TestRhoExposure:
    def test_trust_linear_reports_decreasing_radii(self):
        radii = []

        def objective(u):
            return float((u[0] - 0.3) ** 2)

        LinearTrustRegion(
            rho_start=0.25, rho_end=1e-3, max_evaluations=60, seed=0
        ).minimize(objective, np.array([0.5]), rho_callback=radii.append)
        assert radii[0] == 0.25
        assert min(radii) < 0.25  # the radius actually contracted
        assert all(r > 0 for r in radii)

    def test_driver_threads_listener(self):
        radii = []
        minimize_on_simplex(
            lambda w: float((w[0] - 0.7) ** 2),
            r=2,
            rho_listener=radii.append,
            max_evaluations=40,
        )
        assert radii and radii[0] == 0.25

    def test_non_trust_backends_emit_rho_start(self):
        radii = []
        minimize_on_simplex(
            lambda w: float((w[0] - 0.7) ** 2),
            r=2,
            backend="nelder-mead",
            rho_listener=radii.append,
            max_evaluations=25,
        )
        assert radii == [0.25]


class TestObjectiveLadder:
    def _objective(self, n=700, seed=0):
        mvag = generate_mvag(
            n_nodes=n,
            n_clusters=3,
            graph_view_strengths=[0.8, 0.3],
            attribute_view_dims=[16],
            seed=seed,
        )
        laplacians = build_view_laplacians(mvag, knn_k=5)
        solver = SolverContext(method="lanczos", seed=0)
        return SpectralObjective(laplacians, k=3, solver=solver), solver

    def test_set_trust_radius_noop_without_ladder(self):
        objective, solver = self._objective()
        objective.set_trust_radius(0.25)
        assert solver.tol == 0.0

    def test_ladder_drives_solver_tolerance(self):
        objective, solver = self._objective()
        objective.enable_tolerance_ladder(0.25, 1e-3)
        assert solver.tol == LADDER_COARSE_TOL
        objective.set_trust_radius(0.02)
        assert 0.0 < solver.tol < LADDER_COARSE_TOL
        objective.set_trust_radius(1e-3)
        assert solver.tol == 0.0

    def test_tightening_invalidates_coarse_cache(self):
        """A value cached at a coarse tolerance is recomputed — not
        served stale — once the ladder has tightened past it."""
        objective, solver = self._objective()
        objective.enable_tolerance_ladder(0.25, 1e-3, coarse_tol=1e-3)
        weights = np.array([0.5, 0.3, 0.2])
        objective.components(weights)  # cached at the coarse rung
        solves = solver.stats.solves
        objective.components(weights)  # same rung: served from cache
        assert solver.stats.solves == solves
        objective.set_trust_radius(1e-3)  # tighten to backend default
        objective.components(weights)  # stale coarse entry: recomputed
        assert solver.stats.solves == solves + 1
        solves = solver.stats.solves
        objective.components(weights)  # now cached tight: served again
        assert solver.stats.solves == solves

    def test_evaluate_exact_bypasses_coarse_cache(self):
        objective, solver = self._objective()
        objective.enable_tolerance_ladder(0.25, 1e-3, coarse_tol=1e-3)
        weights = np.array([0.5, 0.3, 0.2])
        coarse = objective.components(weights)
        solves_before = solver.stats.solves
        exact = objective.evaluate_exact(weights)
        assert solver.stats.solves == solves_before + 1  # cache bypassed
        assert solver.tol == 0.0
        assert exact.value == pytest.approx(coarse.value, abs=1e-2)
        # The exact value replaces the coarse cache entry.
        assert objective.components(weights).value == exact.value


class TestSGLALadder:
    def _mvag(self):
        return load_profile_mvag("yelp_small", seed=0)

    def test_determinism_same_seed_same_result(self):
        mvag = self._mvag()
        config = SGLAConfig(seed=0, eigen_backend="lanczos", tol_ladder=True)
        a = SGLA(config).fit(mvag)
        b = SGLA(config).fit(mvag)
        np.testing.assert_array_equal(a.weights, b.weights)
        assert a.objective_value == b.objective_value

    def test_matches_fixed_tolerance_run(self):
        """Same seed => same w* (1e-6) and same final h(w*) (1e-8) as the
        fixed-tolerance run; the ladder only removes wasted precision."""
        mvag = self._mvag()
        fixed = SGLA(SGLAConfig(seed=0, eigen_backend="lanczos")).fit(mvag)
        ladder = SGLA(
            SGLAConfig(seed=0, eigen_backend="lanczos", tol_ladder=True)
        ).fit(mvag)
        assert np.max(np.abs(fixed.weights - ladder.weights)) < 1e-6
        assert abs(fixed.objective_value - ladder.objective_value) < 1e-8

    def test_strictly_fewer_matvecs_than_fixed(self):
        """The matvec regression gate on the *_small profile."""
        mvag = self._mvag()
        fixed = SGLA(SGLAConfig(seed=0, eigen_backend="lanczos")).fit(mvag)
        ladder = SGLA(
            SGLAConfig(seed=0, eigen_backend="lanczos", tol_ladder=True)
        ).fit(mvag)
        assert ladder.solver_stats.matvecs < fixed.solver_stats.matvecs
        assert ladder.solver_stats.coarse_solves > 0

    def test_chebyshev_ladder_end_to_end(self):
        mvag = self._mvag()
        fixed = SGLA(SGLAConfig(seed=0, eigen_backend="chebyshev")).fit(mvag)
        ladder = SGLA(
            SGLAConfig(seed=0, eigen_backend="chebyshev", tol_ladder=True)
        ).fit(mvag)
        assert np.max(np.abs(fixed.weights - ladder.weights)) < 1e-6
        assert ladder.solver_stats.matvecs < fixed.solver_stats.matvecs

    def test_solver_left_at_full_precision(self):
        """Stages after the optimizer (clustering, embedding) must run
        exact: the ladder resets the shared context on the way out."""
        mvag = self._mvag()
        config = SGLAConfig(seed=0, eigen_backend="lanczos", tol_ladder=True)
        solver = config.make_solver()
        SGLA(config).fit(mvag, solver=solver)
        assert solver.tol == 0.0

    def test_caller_configured_tolerance_restored(self):
        """A caller-supplied context's own tolerance survives a ladder
        run (SGLA and SGLA+ both restore it on the way out)."""
        mvag = self._mvag()
        config = SGLAConfig(seed=0, eigen_backend="lanczos", tol_ladder=True)
        for solver_cls in (SGLA, SGLAPlus):
            solver = SolverContext(method="lanczos", tol=1e-6, seed=0)
            solver_cls(config).fit(mvag, solver=solver)
            assert solver.tol == 1e-6

    def test_non_trust_backend_ignores_ladder(self):
        """Optimizers without a trust radius would run the whole search
        coarse; SGLA therefore disables the ladder for them and the run
        matches the plain fixed-tolerance run exactly."""
        mvag = self._mvag()
        base = SGLAConfig(
            seed=0, eigen_backend="lanczos",
            optimizer_backend="nelder-mead",
        )
        ladder_config = SGLAConfig(
            seed=0, eigen_backend="lanczos",
            optimizer_backend="nelder-mead", tol_ladder=True,
        )
        fixed = SGLA(base).fit(mvag)
        ladder = SGLA(ladder_config).fit(mvag)
        np.testing.assert_array_equal(fixed.weights, ladder.weights)
        assert ladder.solver_stats.coarse_solves == 0
        assert fixed.objective_value == ladder.objective_value

    def test_sgla_plus_ladder(self):
        mvag = self._mvag()
        fixed = SGLAPlus(SGLAConfig(seed=0, eigen_backend="lanczos")).fit(mvag)
        ladder = SGLAPlus(
            SGLAConfig(seed=0, eigen_backend="lanczos", tol_ladder=True)
        ).fit(mvag)
        assert np.max(np.abs(fixed.weights - ladder.weights)) < 1e-6
        assert abs(fixed.objective_value - ladder.objective_value) < 1e-8
        assert ladder.solver_stats.matvecs < fixed.solver_stats.matvecs

    def test_invalid_coarse_tol_rejected(self):
        with pytest.raises(ValidationError):
            SGLAConfig(ladder_coarse_tol=0.0)

    def test_downstream_clustering_quality_not_degraded(self):
        """Regression: with a shared solver context, the ladder's
        different warm-block history must not degrade the clustering
        stage.  (Exact label equality is not guaranteed — w* matches to
        ~1e-9, not bitwise, and the Yu–Shi discretization is a local
        rotation search — but quality must hold; the sign
        canonicalization in spectral_embedding_matrix removes the
        solver-sign luck that used to dominate this.)"""
        from repro.core.pipeline import cluster_mvag
        from repro.evaluation.clustering_metrics import clustering_report

        mvag = generate_mvag(
            n_nodes=700,
            n_clusters=6,
            graph_view_strengths=[0.9, 0.6],
            attribute_view_dims=[16],
            seed=2,
        )
        quality = {}
        for ladder in (False, True):
            config = SGLAConfig(
                seed=0, eigen_backend="lanczos", tol_ladder=ladder
            )
            solver = config.make_solver()
            output = cluster_mvag(
                mvag, method="sgla", config=config, seed=0, solver=solver
            )
            quality[ladder] = clustering_report(
                mvag.labels, output.labels
            )["acc"]
        assert quality[True] >= quality[False] - 0.01
