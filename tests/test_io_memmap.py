"""Tests for MVAG persistence: npz round-trips and the memmap directory
format backing the out-of-core pipeline.

The load-bearing properties: both formats round-trip bit-exactly
(including CSR edge cases — empty matrices, single rows, sparse
attribute views); ``generate_mvag_memmap`` streams to disk yet matches
the in-RAM ``generate_mvag`` bit for bit; a fit on a :class:`MemmapMVAG`
equals the fit on the materialized copy; and closed handles fail loudly
instead of serving dangling maps.
"""

from __future__ import annotations

import io
import json

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.laplacian import build_view_laplacians
from repro.core.mvag import MVAG
from repro.core.sgla import SGLA, SGLAConfig
from repro.datasets.generator import generate_mvag, generate_mvag_memmap
from repro.datasets.io import (
    MemmapMVAG,
    _pack_csr,
    _unpack_csr,
    load_mvag,
    open_mvag_memmap,
    save_mvag,
    save_mvag_memmap,
)
from repro.utils.errors import ValidationError


def _assert_same_csr(left, right):
    left = left.tocsr()
    right = right.tocsr()
    assert left.shape == right.shape
    assert (left != right).nnz == 0


@pytest.fixture()
def mixed_mvag():
    """Two graph views, one dense and one sparse attribute view."""
    mvag = generate_mvag(
        60, 3, graph_view_strengths=(0.8, 0.4), attribute_view_dims=(6,),
        seed=5, name="mixed",
    )
    sparse_attr = sp.random(
        60, 9, density=0.2, format="csr", random_state=2, dtype=np.float64
    )
    return MVAG(
        graph_views=mvag.graph_views,
        attribute_views=[mvag.attribute_views[0], sparse_attr],
        labels=mvag.labels,
        name="mixed",
    )


# --------------------------------------------------------------------- #
# CSR pack/unpack edge cases
# --------------------------------------------------------------------- #


class TestPackCsr:
    def _roundtrip(self, matrix):
        store: dict = {}
        _pack_csr("m", matrix.tocsr(), store)
        buffer = io.BytesIO()
        np.savez(buffer, **store)
        buffer.seek(0)
        with np.load(buffer) as archive:
            return _unpack_csr("m", archive)

    def test_empty_matrix(self):
        empty = sp.csr_matrix((4, 4))
        _assert_same_csr(empty, self._roundtrip(empty))

    def test_single_row(self):
        row = sp.csr_matrix(np.array([[0.0, 2.5, 0.0, -1.0]]))
        back = self._roundtrip(row)
        _assert_same_csr(row, back)
        assert back.shape == (1, 4)

    def test_rectangular_preserves_dtypes(self):
        matrix = sp.random(
            7, 3, density=0.5, format="csr", random_state=0,
            dtype=np.float64,
        )
        back = self._roundtrip(matrix)
        _assert_same_csr(matrix, back)
        assert back.data.dtype == matrix.data.dtype


# --------------------------------------------------------------------- #
# npz <-> memmap parity
# --------------------------------------------------------------------- #


class TestMemmapRoundtrip:
    def test_roundtrip_bit_exact(self, tmp_path, mixed_mvag):
        directory = save_mvag_memmap(mixed_mvag, tmp_path / "data")
        with open_mvag_memmap(directory) as opened:
            assert opened.n_nodes == mixed_mvag.n_nodes
            assert opened.n_graph_views == 2
            assert opened.n_attribute_views == 2
            assert opened.n_views == 4
            assert opened.n_classes == 3
            assert opened.name == "mixed"
            for original, reopened in zip(
                mixed_mvag.graph_views, opened.graph_views
            ):
                _assert_same_csr(original, reopened)
            np.testing.assert_array_equal(
                np.asarray(opened.attribute_views[0]),
                mixed_mvag.attribute_views[0],
            )
            _assert_same_csr(
                mixed_mvag.attribute_views[1], opened.attribute_views[1]
            )
            np.testing.assert_array_equal(opened.labels, mixed_mvag.labels)

    def test_matches_npz_route(self, tmp_path, mixed_mvag):
        save_mvag(mixed_mvag, tmp_path / "data.npz")
        from_npz = load_mvag(tmp_path / "data.npz")
        directory = save_mvag_memmap(mixed_mvag, tmp_path / "data")
        with open_mvag_memmap(directory) as opened:
            from_memmap = opened.materialize()
        for a, b in zip(from_npz.graph_views, from_memmap.graph_views):
            _assert_same_csr(a, b)
        np.testing.assert_array_equal(
            np.asarray(from_npz.attribute_views[0]),
            np.asarray(from_memmap.attribute_views[0]),
        )
        _assert_same_csr(
            from_npz.attribute_views[1], from_memmap.attribute_views[1]
        )
        np.testing.assert_array_equal(from_npz.labels, from_memmap.labels)

    def test_views_are_disk_backed(self, tmp_path, mixed_mvag):
        def backed_by_memmap(array):
            while array is not None:
                if isinstance(array, np.memmap):
                    return True
                array = array.base
            return False

        directory = save_mvag_memmap(mixed_mvag, tmp_path / "data")
        opened = open_mvag_memmap(directory)
        # scipy re-wraps the component arrays as plain ndarray views, but
        # they must still alias the on-disk maps, not private copies.
        assert backed_by_memmap(opened.graph_views[0].data)
        assert backed_by_memmap(opened.attribute_views[0])
        opened.close()

    def test_unlabeled_roundtrip(self, tmp_path):
        unlabeled = MVAG(
            graph_views=[sp.random(
                10, 10, density=0.3, format="csr", random_state=1
            )],
            name="bare",
        )
        directory = save_mvag_memmap(unlabeled, tmp_path / "bare")
        with open_mvag_memmap(directory) as opened:
            assert opened.labels is None
            assert opened.n_classes is None
            assert opened.n_attribute_views == 0

    def test_reopen_after_close(self, tmp_path, mixed_mvag):
        directory = save_mvag_memmap(mixed_mvag, tmp_path / "data")
        opened = open_mvag_memmap(directory)
        first_graph = opened.graph_views[0].copy()
        opened.close()
        opened.close()  # idempotent
        reopened = open_mvag_memmap(directory)
        _assert_same_csr(first_graph, reopened.graph_views[0])
        reopened.close()

    def test_closed_access_raises(self, tmp_path, mixed_mvag):
        directory = save_mvag_memmap(mixed_mvag, tmp_path / "data")
        opened = open_mvag_memmap(directory)
        opened.close()
        with pytest.raises(ValidationError, match="closed"):
            opened.graph_views
        with pytest.raises(ValidationError, match="closed"):
            opened.attribute_views
        with pytest.raises(ValidationError, match="closed"):
            opened.materialize()

    def test_missing_meta_rejected(self, tmp_path):
        (tmp_path / "not_a_dataset").mkdir()
        with pytest.raises(ValidationError, match="meta.json"):
            open_mvag_memmap(tmp_path / "not_a_dataset")

    def test_bad_version_rejected(self, tmp_path, mixed_mvag):
        directory = save_mvag_memmap(mixed_mvag, tmp_path / "data")
        meta_path = directory / "meta.json"
        meta = json.loads(meta_path.read_text())
        meta["format_version"] = 99
        meta_path.write_text(json.dumps(meta))
        with pytest.raises(ValidationError, match="version 99"):
            open_mvag_memmap(directory)

    def test_missing_component_rejected(self, tmp_path, mixed_mvag):
        directory = save_mvag_memmap(mixed_mvag, tmp_path / "data")
        (directory / "graph_0_data.npy").unlink()
        with pytest.raises(ValidationError, match="graph_0_data"):
            open_mvag_memmap(directory)


# --------------------------------------------------------------------- #
# Streaming generation parity
# --------------------------------------------------------------------- #


class TestGenerateMemmap:
    def test_bit_matches_in_ram_generator(self, tmp_path):
        kwargs = dict(
            n_nodes=300, n_clusters=4, graph_view_strengths=(0.8, 0.3),
            attribute_view_dims=(12,), seed=17,
        )
        in_ram = generate_mvag(**kwargs)
        # A chunk size that does not divide n exercises the ragged tail.
        streamed = generate_mvag_memmap(
            tmp_path / "stream", chunk_rows=37, **kwargs
        )
        try:
            for a, b in zip(in_ram.graph_views, streamed.graph_views):
                _assert_same_csr(a, b)
            np.testing.assert_array_equal(
                np.asarray(streamed.attribute_views[0]),
                in_ram.attribute_views[0],
            )
            np.testing.assert_array_equal(streamed.labels, in_ram.labels)
        finally:
            streamed.close()

    def test_fit_on_memmap_matches_materialized(self, tmp_path):
        streamed = generate_mvag_memmap(
            tmp_path / "fit", n_nodes=250, n_clusters=3,
            graph_view_strengths=(0.7,), attribute_view_dims=(8,), seed=9,
        )
        try:
            config = SGLAConfig(seed=1)
            from_memmap = SGLA(config).fit(streamed)
            from_ram = SGLA(config).fit(streamed.materialize())
            np.testing.assert_array_equal(
                from_memmap.weights, from_ram.weights
            )
            assert from_memmap.objective_value == from_ram.objective_value
            assert (from_memmap.laplacian != from_ram.laplacian).nnz == 0
        finally:
            streamed.close()

    def test_streamed_laplacians_match_in_ram(self, tmp_path):
        streamed = generate_mvag_memmap(
            tmp_path / "lap", n_nodes=200, n_clusters=3,
            graph_view_strengths=(0.7,), attribute_view_dims=(10,), seed=4,
        )
        try:
            from_memmap = build_view_laplacians(streamed, knn_k=6)
            from_ram = build_view_laplacians(streamed.materialize(), knn_k=6)
            assert len(from_memmap) == len(from_ram)
            for a, b in zip(from_memmap, from_ram):
                _assert_same_csr(a, b)
        finally:
            streamed.close()
