"""Tests for cosine KNN graph construction."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.knn import knn_graph
from repro.utils.errors import ValidationError
from repro.utils.sparse import is_symmetric


class TestBasics:
    def test_exact_neighbors_tiny(self):
        # Three orthogonal-ish points plus one duplicate direction: the
        # duplicate pair must be mutual 1-NN with similarity ~1.
        features = np.array(
            [[1.0, 0.0], [1.0, 0.01], [0.0, 1.0], [-1.0, 0.2]]
        )
        graph = knn_graph(features, k=1)
        assert graph[0, 1] == pytest.approx(1.0, abs=1e-3)
        assert graph[1, 0] == pytest.approx(1.0, abs=1e-3)

    def test_symmetric_zero_diagonal(self):
        rng = np.random.default_rng(0)
        graph = knn_graph(rng.standard_normal((40, 5)), k=4)
        assert is_symmetric(graph)
        assert graph.diagonal().sum() == 0.0

    def test_weights_in_unit_interval(self):
        rng = np.random.default_rng(1)
        graph = knn_graph(rng.standard_normal((30, 8)), k=5)
        assert graph.data.min() >= 0.0
        assert graph.data.max() <= 1.0 + 1e-12

    def test_unweighted_mode(self):
        rng = np.random.default_rng(2)
        graph = knn_graph(np.abs(rng.standard_normal((20, 4))), k=3,
                          weighted=False)
        assert set(np.unique(graph.data)) <= {1.0}

    def test_min_degree_k(self):
        """After max-symmetrization every node keeps >= k neighbors'
        worth of structure (its own k outgoing edges survive)."""
        rng = np.random.default_rng(3)
        k = 4
        graph = knn_graph(np.abs(rng.standard_normal((25, 6))) + 0.1, k=k)
        degrees = np.asarray((graph > 0).sum(axis=1)).ravel()
        assert degrees.min() >= k

    def test_k_clamped_to_n_minus_one(self):
        features = np.abs(np.random.default_rng(4).standard_normal((5, 3)))
        graph = knn_graph(features, k=100)
        degrees = np.asarray((graph > 0).sum(axis=1)).ravel()
        assert degrees.max() <= 4

    def test_k_must_be_positive(self):
        with pytest.raises(ValidationError):
            knn_graph(np.ones((4, 2)), k=0)

    def test_single_node(self):
        graph = knn_graph(np.ones((1, 3)), k=2)
        assert graph.shape == (1, 1)
        assert graph.nnz == 0

    def test_nan_rejected(self):
        features = np.ones((4, 2))
        features[1, 1] = np.nan
        with pytest.raises(ValidationError):
            knn_graph(features, k=1)


class TestSparseDenseAgreement:
    def test_sparse_matches_dense(self):
        rng = np.random.default_rng(5)
        dense = np.abs(rng.standard_normal((30, 12)))
        dense[dense < 0.7] = 0.0
        sparse = sp.csr_matrix(dense)
        g_dense = knn_graph(dense, k=4)
        g_sparse = knn_graph(sparse, k=4)
        np.testing.assert_allclose(
            g_dense.toarray(), g_sparse.toarray(), atol=1e-10
        )

    def test_blocked_matches_unblocked(self):
        rng = np.random.default_rng(6)
        features = rng.standard_normal((50, 7))
        whole = knn_graph(features, k=5, block_size=4096)
        blocked = knn_graph(features, k=5, block_size=7)
        np.testing.assert_allclose(whole.toarray(), blocked.toarray(), atol=1e-10)


class TestThreadedBlocks:
    """The concurrent block GEMMs must be bit-identical to serial."""

    def test_dense_bit_identical(self):
        rng = np.random.default_rng(8)
        features = rng.standard_normal((300, 9))
        serial = knn_graph(features, k=6, block_size=32)
        threaded = knn_graph(features, k=6, block_size=32, workers=4)
        assert (serial != threaded).nnz == 0
        np.testing.assert_array_equal(serial.data, threaded.data)
        np.testing.assert_array_equal(serial.indices, threaded.indices)
        np.testing.assert_array_equal(serial.indptr, threaded.indptr)

    def test_sparse_bit_identical(self):
        rng = np.random.default_rng(9)
        dense = np.abs(rng.standard_normal((200, 40)))
        dense[dense < 1.0] = 0.0
        features = sp.csr_matrix(dense)
        serial = knn_graph(features, k=5, block_size=17)
        threaded = knn_graph(features, k=5, block_size=17, workers=3)
        assert (serial != threaded).nnz == 0
        np.testing.assert_array_equal(serial.data, threaded.data)

    def test_single_worker_uses_serial_path(self):
        rng = np.random.default_rng(10)
        features = rng.standard_normal((60, 5))
        serial = knn_graph(features, k=4, block_size=16)
        one_worker = knn_graph(features, k=4, block_size=16, workers=1)
        np.testing.assert_array_equal(serial.data, one_worker.data)

    def test_build_view_laplacians_threads_workers(self):
        from repro.core.laplacian import build_view_laplacians
        from repro.datasets.generator import generate_mvag

        mvag = generate_mvag(
            n_nodes=90,
            n_clusters=2,
            graph_view_strengths=[0.8],
            attribute_view_dims=[12],
            seed=3,
        )
        serial = build_view_laplacians(mvag, knn_k=4, knn_block_size=16)
        threaded = build_view_laplacians(
            mvag, knn_k=4, knn_block_size=16, workers=4
        )
        for a, b in zip(serial, threaded):
            assert (a != b).nnz == 0
            np.testing.assert_array_equal(a.data, b.data)


class TestClusterStructure:
    def test_two_blobs_disconnect(self):
        """Two well-separated Gaussian blobs should form two components."""
        rng = np.random.default_rng(7)
        blob_a = rng.standard_normal((20, 3)) * 0.05 + np.array([10.0, 0, 0])
        blob_b = rng.standard_normal((20, 3)) * 0.05 + np.array([0, 10.0, 0])
        graph = knn_graph(np.vstack([blob_a, blob_b]), k=3)
        n_components, assignment = sp.csgraph.connected_components(graph)
        assert n_components == 2
        assert len(set(assignment[:20])) == 1
        assert len(set(assignment[20:])) == 1

    @given(st.integers(min_value=5, max_value=30), st.integers(1, 4),
           st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_structural_invariants(self, n, k, seed):
        rng = np.random.default_rng(seed)
        graph = knn_graph(rng.standard_normal((n, 4)), k=k)
        assert graph.shape == (n, n)
        assert is_symmetric(graph)
        assert graph.diagonal().sum() == 0.0
        assert graph.nnz == 0 or graph.data.min() >= 0.0
