"""Integration tests of the serving daemon (DESIGN.md §13).

Live daemons on loopback sockets: determinism (served results are
bit-identical to direct in-process computation, batched or not),
admission control under synthetic overload, deadline behaviour, tenant
quotas, connection-abandonment hygiene, and the graceful-lifecycle
contracts (SIGTERM drain + exit 0, busy-port double start, draining
refusals).  The ``worker_gate`` test hook freezes the executor threads
so queue states are constructed deterministically, not by racing.
"""

from __future__ import annotations

import socket
import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.core.objective import SpectralObjective
from repro.core.pipeline import cluster_mvag
from repro.core.sgla import SGLAConfig, prepare_laplacians
from repro.datasets.profiles import load_profile_mvag
from repro.serve import (
    DeadlineExceeded,
    ServeClient,
    ServeConfig,
    ServeDaemon,
    ServerDraining,
    ServerOverloaded,
    TenantQuotaExceeded,
)
from repro.serve.daemon import spawn_daemon
from repro.serve.fleet import FleetManager
from repro.serve.jobs import DatasetCache, cache_summary, payload_nbytes
from repro.serve.ring import HashRing, route_key
from repro.serve.router import Router, RouterConfig
from repro.shard.remote import send_frame
from repro.solvers import SolverContext
from repro.utils.errors import ValidationError

PROFILE = "rm_small"
R = 11  # view count of rm_small


def simplex_weights(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    raw = rng.random(R) + 0.05
    return raw / raw.sum()


@pytest.fixture()
def daemon():
    with ServeDaemon(ServeConfig(bind="127.0.0.1:0", workers=2)) as live:
        yield live


@pytest.fixture()
def client(daemon):
    with ServeClient(daemon.address) as live:
        yield live


def wait_for(predicate, timeout=5.0, interval=0.01) -> bool:
    limit = time.monotonic() + timeout
    while time.monotonic() < limit:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ---------------------------------------------------------------------- #
# Determinism: served == direct, batched == sequential
# ---------------------------------------------------------------------- #

class TestBitIdentity:
    def test_cluster_matches_direct_pipeline(self, client):
        reply = client.submit({"kind": "cluster", "profile": PROFILE})
        mvag = load_profile_mvag(PROFILE, seed=0)
        direct = cluster_mvag(mvag, config=SGLAConfig(), seed=0)
        np.testing.assert_array_equal(
            reply["result"]["labels"], direct.labels
        )
        assert reply["result"]["objective_value"] == (
            direct.integration.objective_value
        )

    def test_objective_matches_direct_cold_evaluation(self, client):
        weights = simplex_weights(1)
        reply = client.submit({
            "kind": "objective", "profile": PROFILE, "weights": weights,
        })
        mvag = load_profile_mvag(PROFILE, seed=0)
        laplacians, k = prepare_laplacians(mvag, None, SGLAConfig())
        objective = SpectralObjective(
            laplacians, k=k, cache=False,
            solver=SolverContext(warm_start=False),
        )
        assert reply["result"]["value"] == objective(weights)

    def test_batched_equals_sequential_bitwise(self):
        # The result cache would (correctly) answer the repeat phase
        # from memory; disable it so the batch path actually executes.
        config = ServeConfig(
            bind="127.0.0.1:0", workers=2, result_cache=False
        )
        with ServeDaemon(config) as daemon:
            self._check_batched_equals_sequential(daemon)

    def _check_batched_equals_sequential(self, daemon):
        # Sequential: one at a time (workers live, nothing to coalesce).
        points = [simplex_weights(seed) for seed in range(4)]
        with ServeClient(daemon.address) as client:
            sequential = [
                client.submit({
                    "kind": "objective", "profile": PROFILE, "weights": w,
                })["result"]["value"]
                for w in points
            ]
        # Batched: freeze the executors, stack all four compatible
        # requests, release — they run as one evaluate_batch group.
        assert daemon.hold_workers()
        replies = [None] * len(points)

        def submit(index: int) -> None:
            with ServeClient(daemon.address, tenant=f"t{index}") as c:
                replies[index] = c.submit({
                    "kind": "objective", "profile": PROFILE,
                    "weights": points[index],
                })

        threads = [
            threading.Thread(target=submit, args=(i,))
            for i in range(len(points))
        ]
        for thread in threads:
            thread.start()
        assert wait_for(lambda: daemon.queue.depth == len(points))
        daemon.worker_gate.set()
        for thread in threads:
            thread.join(timeout=30)
        assert max(reply["batched"] for reply in replies) > 1
        batched = [reply["result"]["value"] for reply in replies]
        assert batched == sequential  # bitwise, not approx

    def test_incompatible_objectives_not_batched(self, daemon):
        assert daemon.hold_workers()
        replies = {}

        def submit(gamma: float) -> None:
            with ServeClient(daemon.address) as c:
                replies[gamma] = c.submit({
                    "kind": "objective", "profile": PROFILE,
                    "weights": simplex_weights(0), "gamma": gamma,
                })

        threads = [
            threading.Thread(target=submit, args=(gamma,))
            for gamma in (0.25, 0.75)
        ]
        for thread in threads:
            thread.start()
        assert wait_for(lambda: daemon.queue.depth == 2)
        daemon.worker_gate.set()
        for thread in threads:
            thread.join(timeout=30)
        assert all(reply["batched"] == 1 for reply in replies.values())
        # Different gamma, genuinely different values.
        assert (
            replies[0.25]["result"]["value"]
            != replies[0.75]["result"]["value"]
        )


# ---------------------------------------------------------------------- #
# Overload, deadlines, quotas
# ---------------------------------------------------------------------- #

class TestOverload:
    def test_queue_full_sheds_fast_with_structured_error(self):
        config = ServeConfig(bind="127.0.0.1:0", workers=1, queue_depth=2)
        with ServeDaemon(config) as daemon:
            assert daemon.hold_workers()  # nothing dequeues
            fillers = [ServeClient(daemon.address) for _ in range(2)]
            threads = []
            try:
                for filler in fillers:
                    thread = threading.Thread(
                        target=lambda c=filler: c.submit({
                            "kind": "cluster", "profile": PROFILE,
                        }),
                        daemon=True,
                    )
                    thread.start()
                    threads.append(thread)
                assert wait_for(lambda: daemon.queue.depth == 2)
                with ServeClient(daemon.address) as extra:
                    started = time.monotonic()
                    with pytest.raises(ServerOverloaded) as excinfo:
                        extra.submit({
                            "kind": "cluster", "profile": PROFILE,
                        })
                    elapsed = time.monotonic() - started
                assert elapsed < 1.0  # shed, not queued-then-timed-out
                assert excinfo.value.fields["capacity"] == 2
            finally:
                daemon.worker_gate.set()
                for thread in threads:
                    thread.join(timeout=30)
                for filler in fillers:
                    filler.close()

    def test_health_answers_inline_under_overload(self):
        config = ServeConfig(bind="127.0.0.1:0", workers=1, queue_depth=1)
        with ServeDaemon(config) as daemon:
            assert daemon.hold_workers()
            filler = ServeClient(daemon.address)
            thread = threading.Thread(
                target=lambda: filler.submit({
                    "kind": "cluster", "profile": PROFILE,
                }),
                daemon=True,
            )
            thread.start()
            try:
                assert wait_for(lambda: daemon.queue.depth == 1)
                with ServeClient(daemon.address) as monitor:
                    health = monitor.health(timeout=2.0)
                assert health["queue_depth"] == 1
                assert health["stats"]["totals"]["admitted"] == 1
            finally:
                daemon.worker_gate.set()
                thread.join(timeout=30)
                filler.close()

    def test_deadline_expires_while_queued(self):
        config = ServeConfig(bind="127.0.0.1:0", workers=1)
        with ServeDaemon(config) as daemon:
            assert daemon.hold_workers()
            with ServeClient(daemon.address) as client:
                started = time.monotonic()
                with pytest.raises(DeadlineExceeded) as excinfo:
                    client.submit(
                        {"kind": "cluster", "profile": PROFILE},
                        deadline=0.3,
                    )
                elapsed = time.monotonic() - started
            # Replied at the deadline (plus a wait slice), not a hang.
            assert 0.2 < elapsed < 2.0
            assert excinfo.value.fields["stage"] == "queued"
            assert daemon.stats.total("deadline_expired") == 1
            daemon.worker_gate.set()

    def test_default_deadline_applied_when_request_has_none(self):
        config = ServeConfig(
            bind="127.0.0.1:0", workers=1, default_deadline=0.3
        )
        with ServeDaemon(config) as daemon:
            assert daemon.hold_workers()
            with ServeClient(daemon.address, timeout=10.0) as client:
                with pytest.raises(DeadlineExceeded):
                    client.submit({"kind": "cluster", "profile": PROFILE})
            daemon.worker_gate.set()

    def test_tenant_quota_sheds_noisy_tenant_only(self):
        config = ServeConfig(
            bind="127.0.0.1:0", workers=2,
            tenant_rate=0.001, tenant_burst=2.0,
        )
        with ServeDaemon(config) as daemon:
            with ServeClient(daemon.address, tenant="noisy") as noisy:
                noisy.submit({"kind": "cluster", "profile": PROFILE})
                noisy.submit({"kind": "cluster", "profile": PROFILE})
                with pytest.raises(TenantQuotaExceeded):
                    noisy.submit({"kind": "cluster", "profile": PROFILE})
            with ServeClient(daemon.address, tenant="quiet") as quiet:
                reply = quiet.submit({
                    "kind": "cluster", "profile": PROFILE,
                })
            assert reply["ok"]
            snap = daemon.stats.snapshot()
            assert snap["tenants"]["noisy"]["rejected_quota"] == 1
            assert snap["tenants"]["quiet"]["rejected_quota"] == 0


# ---------------------------------------------------------------------- #
# Connection hygiene
# ---------------------------------------------------------------------- #

class TestAbandonment:
    def test_hundred_abandoned_requests_leak_nothing(self):
        config = ServeConfig(
            bind="127.0.0.1:0", workers=1, queue_depth=256
        )
        with ServeDaemon(config) as daemon:
            assert daemon.hold_workers()  # requests stay queued
            host, port = daemon.address.rsplit(":", 1)
            for index in range(100):
                sock = socket.create_connection((host, int(port)), 5.0)
                send_frame(sock, {
                    "op": "submit", "tenant": f"t{index % 7}",
                    "deadline": None,
                    "job": {"kind": "cluster", "profile": PROFILE},
                })
                sock.close()  # abandon without reading the reply
            # Every slot and byte must come back.
            assert wait_for(
                lambda: daemon.queue.depth == 0
                and daemon.queue.inflight_bytes == 0,
                timeout=20.0,
            ), (daemon.queue.depth, daemon.queue.inflight_bytes)
            assert daemon.stats.total("cancelled") == 100
            daemon.worker_gate.set()
            # The daemon still serves after the churn.
            with ServeClient(daemon.address) as client:
                assert client.submit(
                    {"kind": "cluster", "profile": PROFILE}
                )["ok"]

    def test_malformed_request_gets_structured_error(self, client):
        from repro.serve.protocol import reply_to_error

        reply = client.request({"op": "nonsense"})
        assert reply["ok"] is False
        assert isinstance(reply_to_error(reply), ValidationError)
        with pytest.raises(ValidationError):
            client.submit({"kind": "alchemy", "profile": PROFILE})


# ---------------------------------------------------------------------- #
# Lifecycle
# ---------------------------------------------------------------------- #

class TestLifecycle:
    def test_draining_daemon_refuses_new_work(self, daemon):
        with ServeClient(daemon.address) as client:
            client.drain()
            with pytest.raises(ServerDraining):
                client.submit({"kind": "cluster", "profile": PROFILE})

    def test_sigterm_drains_and_exits_zero(self):
        spawned = spawn_daemon(["--workers", "2"], capture_stderr=True)
        outcomes = []

        def pound(index: int) -> None:
            try:
                with ServeClient(spawned.address, tenant=f"t{index}") as c:
                    for _ in range(3):
                        reply = c.submit({
                            "kind": "objective", "profile": PROFILE,
                            "weights": simplex_weights(index),
                        })
                        outcomes.append(("ok", reply["result"]["value"]))
            except (ServerDraining, ConnectionError, OSError) as error:
                outcomes.append(("refused", type(error).__name__))

        try:
            threads = [
                threading.Thread(target=pound, args=(i,)) for i in range(4)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.2)  # let traffic get in flight
            spawned.terminate()  # SIGTERM mid-stream
            for thread in threads:
                thread.join(timeout=30)
            code = spawned.wait(timeout=30)
            stderr = spawned.process.stderr.read()
        finally:
            spawned.kill()
        assert code == 0, stderr
        # Every request either completed (drained) or was cleanly
        # refused — no hangs, no dirty deaths.
        assert outcomes
        assert any(kind == "ok" for kind, _ in outcomes)
        assert "serve:" in stderr  # final stats line on stderr

    def test_double_start_on_busy_port_fails_cleanly(self, daemon):
        result = subprocess.run(
            [sys.executable, "-m", "repro.serve",
             "--bind", daemon.address],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 2
        assert result.stderr.startswith("error:")
        assert "Traceback" not in result.stderr

    def test_malformed_bind_fails_cleanly(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.serve", "--bind", "nonsense"],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 2
        assert result.stderr.startswith("error:")
        assert "Traceback" not in result.stderr


# ---------------------------------------------------------------------- #
# CLI: serve-stats renders from the health endpoint
# ---------------------------------------------------------------------- #

class TestServeStatsCLI:
    def test_stats_line_from_live_daemon(self, daemon):
        with ServeClient(daemon.address, tenant="cli-test") as client:
            client.submit({
                "kind": "objective", "profile": PROFILE,
                "weights": simplex_weights(0),
            })
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve-stats",
             daemon.address, "--tenants"],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.startswith("serve: ")
        assert "1 completed" in result.stdout
        assert "queue: " in result.stdout
        assert "tenant cli-test:" in result.stdout

    def test_unreachable_daemon_fails_cleanly(self):
        # A port nothing listens on: reserve one, close it, query it.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve-stats",
             f"127.0.0.1:{port}", "--timeout", "5"],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 2
        assert result.stderr.startswith("error:")
        assert "Traceback" not in result.stderr


# ---------------------------------------------------------------------- #
# Dataset cache: byte-budgeted LRU (DESIGN.md §14)
# ---------------------------------------------------------------------- #

class TestDatasetCacheBudget:
    def test_payload_nbytes_walks_arrays_and_sparse(self):
        dense = np.zeros((100, 100))
        other = np.ones((50, 50))
        assert payload_nbytes(dense) == dense.nbytes
        assert payload_nbytes([dense, other]) == (
            dense.nbytes + other.nbytes
        )
        # the same object reached twice is accounted once, not twice
        assert payload_nbytes([dense, dense]) == dense.nbytes
        assert payload_nbytes({"a": dense}) == dense.nbytes
        assert payload_nbytes(b"12345") == 5
        assert payload_nbytes("not counted") == 0
        import scipy.sparse as sp

        csr = sp.random(50, 50, density=0.1, format="csr")
        expected = csr.data.nbytes + csr.indices.nbytes + csr.indptr.nbytes
        assert payload_nbytes(csr) == expected
        # cycles terminate
        loop = {"self": None}
        loop["self"] = loop
        assert payload_nbytes(loop) == 0

    def test_byte_budget_evicts_lru(self):
        probe = DatasetCache(capacity=8)
        probe.mvag(PROFILE, seed=0)
        one_dataset = probe.snapshot()["bytes"]
        assert one_dataset > 0
        cache = DatasetCache(capacity=8, max_bytes=int(one_dataset * 1.5))
        cache.mvag(PROFILE, seed=0)
        cache.mvag(PROFILE, seed=1)  # over budget: seed 0 evicted
        snap = cache.snapshot()
        assert snap["evictions"] == 1
        assert snap["entries"] == 1
        assert snap["bytes"] <= snap["max_bytes"]
        cache.mvag(PROFILE, seed=1)  # survivor still resident
        assert cache.snapshot()["hits"] == 1

    def test_single_over_budget_entry_caches_alone(self):
        cache = DatasetCache(capacity=8, max_bytes=1)
        cache.mvag(PROFILE, seed=0)  # never evicts the entry being served
        snap = cache.snapshot()
        assert snap["entries"] == 1
        assert snap["evictions"] == 0
        cache.mvag(PROFILE, seed=1)  # next insert displaces it
        snap = cache.snapshot()
        assert snap["entries"] == 1
        assert snap["evictions"] == 1

    def test_entry_cap_still_applies(self):
        cache = DatasetCache(capacity=1)
        cache.mvag(PROFILE, seed=0)
        cache.mvag(PROFILE, seed=1)
        snap = cache.snapshot()
        assert snap["entries"] == 1
        assert snap["evictions"] == 1

    def test_hit_restamps_recency(self):
        probe = DatasetCache(capacity=8)
        probe.mvag(PROFILE, seed=0)
        one_dataset = probe.snapshot()["bytes"]
        cache = DatasetCache(capacity=8, max_bytes=int(one_dataset * 2.5))
        cache.mvag(PROFILE, seed=0)
        cache.mvag(PROFILE, seed=1)
        cache.mvag(PROFILE, seed=0)  # refresh: seed 1 is now the LRU
        cache.mvag(PROFILE, seed=2)  # evicts seed 1, not seed 0
        assert cache.snapshot()["evictions"] == 1
        hits_before = cache.snapshot()["hits"]
        cache.mvag(PROFILE, seed=0)
        assert cache.snapshot()["hits"] == hits_before + 1

    def test_laplacian_counters_not_double_counted(self):
        # Regression: laplacians() resolved its MVAG through the public
        # counting path, so one cold laplacian request recorded *two*
        # misses (and a warm one recorded a spurious mvag hit), skewing
        # the health endpoint's hit rate.  The inner resolution must be
        # counter-neutral: one lookup outcome per public call.
        cache = DatasetCache(capacity=8)
        config = SGLAConfig()
        cache.laplacians(PROFILE, 0, None, config, ())
        snap = cache.snapshot()
        assert (snap["hits"], snap["misses"]) == (0, 1)
        cache.laplacians(PROFILE, 0, None, config, ())
        snap = cache.snapshot()
        assert (snap["hits"], snap["misses"]) == (1, 1)
        # A direct mvag request afterwards is a counted hit of its own
        # (the inner build populated the mvag layer).
        cache.mvag(PROFILE, seed=0)
        snap = cache.snapshot()
        assert (snap["hits"], snap["misses"]) == (2, 1)

    def test_health_and_cli_surface_cache_counters(self, daemon):
        with ServeClient(daemon.address) as client:
            # Distinct weight vectors: different result-cache keys (so
            # both execute), same Laplacian key (so the second is a
            # dataset-cache hit).
            for seed in range(2):
                client.submit({
                    "kind": "objective", "profile": PROFILE,
                    "weights": simplex_weights(seed),
                })
            cache = client.health()["cache"]
        assert cache["misses"] >= 1
        assert cache["hits"] >= 1
        assert cache["entries"] >= 1
        assert cache["bytes"] > 0
        assert "cache" in cache_summary(cache)
        result = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve-stats",
             daemon.address],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 0, result.stderr
        assert "cache" in result.stdout
        assert "evictions" in result.stdout


# ---------------------------------------------------------------------- #
# Dataset cache: per-key build latches (no lock held across builds)
# ---------------------------------------------------------------------- #

class TestDatasetCacheConcurrency:
    def test_cold_build_does_not_block_unrelated_hits(self, monkeypatch):
        # Regression: the cache lock was held across an entire profile
        # build, so a cold load on one key blocked *hits* on already-
        # cached keys for the build's full duration.  With per-key
        # latches, only same-key requests wait.
        started = threading.Event()
        release = threading.Event()
        real = load_profile_mvag

        def slow_load(profile, seed=0):
            if seed == 99:
                started.set()
                assert release.wait(30), "builder was never released"
                return np.zeros(8)
            return real(profile, seed=seed)

        monkeypatch.setattr(
            "repro.serve.jobs.load_profile_mvag", slow_load
        )
        cache = DatasetCache(capacity=8)
        cache.mvag(PROFILE, seed=0)  # warm one key

        builder = threading.Thread(
            target=cache.mvag, args=(PROFILE,), kwargs={"seed": 99}
        )
        builder.start()
        try:
            assert started.wait(10)
            assert cache.snapshot()["building"] == 1
            # A hit on the warm key must complete while the build is
            # still in flight.
            got = {}
            reader = threading.Thread(
                target=lambda: got.setdefault(
                    "value", cache.mvag(PROFILE, seed=0)
                )
            )
            reader.start()
            reader.join(timeout=5)
            assert not reader.is_alive(), (
                "hit on an unrelated key blocked behind a cold build"
            )
            assert got["value"] is not None
        finally:
            release.set()
            builder.join(timeout=30)
        assert cache.snapshot()["building"] == 0

    def test_same_key_concurrent_requests_build_once(self, monkeypatch):
        calls = []
        gate = threading.Event()

        def counted_load(profile, seed=0):
            calls.append((profile, seed))
            assert gate.wait(30)
            return np.zeros(8)

        monkeypatch.setattr(
            "repro.serve.jobs.load_profile_mvag", counted_load
        )
        cache = DatasetCache(capacity=8)
        values = [None] * 4

        def fetch(index):
            values[index] = cache.mvag("fake", seed=7)

        threads = [
            threading.Thread(target=fetch, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        assert wait_for(lambda: len(calls) >= 1)
        time.sleep(0.05)  # give the other three time to reach the latch
        gate.set()
        for thread in threads:
            thread.join(timeout=30)
        assert calls == [("fake", 7)]  # exactly one build
        assert all(value is not None for value in values)
        snap = cache.snapshot()
        # One miss (the owner); the three waiters found the value after
        # the latch and count as hits.
        assert snap["misses"] == 1
        assert snap["hits"] == 3

    def test_failed_build_releases_the_latch(self, monkeypatch):
        attempts = []

        def flaky_load(profile, seed=0):
            attempts.append(seed)
            if len(attempts) == 1:
                raise RuntimeError("dataset store hiccup")
            return np.zeros(8)

        monkeypatch.setattr(
            "repro.serve.jobs.load_profile_mvag", flaky_load
        )
        cache = DatasetCache(capacity=8)
        with pytest.raises(RuntimeError):
            cache.mvag("fake", seed=1)
        assert cache.snapshot()["building"] == 0  # latch cleaned up
        assert cache.mvag("fake", seed=1) is not None  # retry succeeds
        assert len(attempts) == 2


# ---------------------------------------------------------------------- #
# Drain under live router traffic (the front-tier contract)
# ---------------------------------------------------------------------- #

class TestDrainUnderRouterTraffic:
    def test_sigterm_drain_while_router_sending(self):
        job = {
            "kind": "objective", "profile": PROFILE, "k": 2,
            "weights": np.full(R, 1.0 / R),
        }
        with FleetManager(3, argv_extra=["--workers", "1"]) as fleet:
            addrs = fleet.addresses()
            primary = HashRing(addrs).lookup(route_key(job))[0]
            config = RouterConfig(
                daemons=tuple(addrs), replication=2, health_interval=0.1
            )
            with Router(config) as router:
                first = router.submit(dict(job))
                assert first["routed_to"] == primary
                expected = first["result"]["value"]
                stop = threading.Event()
                replies, errors = [], []

                def pound():
                    while not stop.is_set():
                        try:
                            replies.append(router.submit(dict(job)))
                        except Exception as error:  # noqa: BLE001
                            errors.append(error)

                threads = [
                    threading.Thread(target=pound) for _ in range(2)
                ]
                for thread in threads:
                    thread.start()
                try:
                    time.sleep(0.3)  # traffic in flight at the primary
                    fleet.terminate_one(primary)  # SIGTERM: drain
                    # the health flag takes it out of rotation
                    assert wait_for(
                        lambda: router.health[primary].draining
                        or not router.health[primary].alive,
                        timeout=10.0,
                    )
                    # the daemon finishes in-flight work and exits clean
                    assert fleet.daemon(primary).wait(timeout=30) == 0
                    time.sleep(0.3)  # traffic continues on survivors
                finally:
                    stop.set()
                    for thread in threads:
                        thread.join(timeout=30)
                # zero lost: every admitted request completed, and
                # completed bit-identically
                assert not errors, errors[:3]
                assert replies
                assert all(
                    r["result"]["value"] == expected for r in replies
                )
                # traffic really did move off the drained daemon
                tail = [r["routed_to"] for r in replies[-5:]]
                assert primary not in tail
