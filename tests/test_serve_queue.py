"""Unit tests of the serving daemon's admission queue (DESIGN.md §13).

The queue is the robustness core: depth + byte bounds, per-tenant token
buckets, start-time-fair dequeue, deadline finalization of queued
entries, and the no-leak cancellation contract.  Everything here runs
single-threaded with an injected fake clock — determinism over sockets.
"""

from __future__ import annotations

import pytest

from repro.serve.queue import (
    AdmissionQueue,
    QUEUED,
    RequestEntry,
    TokenBucket,
)
from repro.serve.stats import ServeStats, percentile
from repro.utils.errors import (
    DeadlineExceeded,
    ServerDraining,
    ServerOverloaded,
    TenantQuotaExceeded,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make_queue(clock=None, **overrides) -> AdmissionQueue:
    params = dict(capacity=4, max_bytes=1000, stats=ServeStats())
    if clock is not None:
        params["clock"] = clock
    params.update(overrides)
    return AdmissionQueue(**params)


def entry(tenant="a", nbytes=10, deadline=None, batch_key=None, clock=None):
    kwargs = {}
    if clock is not None:
        kwargs["clock"] = clock
    return RequestEntry(
        tenant=tenant, job={"kind": "objective"}, nbytes=nbytes,
        deadline=deadline, batch_key=batch_key, **kwargs,
    )


# ---------------------------------------------------------------------- #
# Token bucket
# ---------------------------------------------------------------------- #

class TestTokenBucket:
    def test_zero_rate_admits_everything(self):
        bucket = TokenBucket(rate=0.0, burst=1.0)
        assert all(bucket.try_admit() for _ in range(100))

    def test_burst_then_refusal(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.try_admit() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refill_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        bucket.try_admit()
        bucket.try_admit()
        assert not bucket.try_admit()
        clock.advance(0.5)  # 2/s * 0.5s = 1 token
        assert bucket.try_admit()
        assert not bucket.try_admit()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.try_admit()
        assert bucket.try_admit()
        assert not bucket.try_admit()


# ---------------------------------------------------------------------- #
# Admission gates
# ---------------------------------------------------------------------- #

class TestAdmission:
    def test_capacity_rejection_is_structured(self):
        queue = make_queue(capacity=2)
        queue.submit(entry())
        queue.submit(entry())
        with pytest.raises(ServerOverloaded) as excinfo:
            queue.submit(entry())
        assert excinfo.value.fields["queue_depth"] == 2
        assert queue.stats.total("rejected_overload") == 1

    def test_byte_budget_rejection(self):
        queue = make_queue(capacity=100, max_bytes=100)
        queue.submit(entry(nbytes=80))
        with pytest.raises(ServerOverloaded) as excinfo:
            queue.submit(entry(nbytes=80))
        assert "byte budget" in str(excinfo.value)

    def test_oversize_single_request_admitted_when_empty(self):
        # A request bigger than the whole budget must not deadlock the
        # queue forever: alone, it is admitted.
        queue = make_queue(max_bytes=100)
        queue.submit(entry(nbytes=500))
        assert queue.depth == 1

    def test_draining_rejects_new_admissions(self):
        queue = make_queue()
        queue.drain()
        with pytest.raises(ServerDraining):
            queue.submit(entry())
        assert queue.stats.total("rejected_draining") == 1

    def test_quota_sheds_only_the_noisy_tenant(self):
        clock = FakeClock()
        queue = make_queue(
            clock=clock, capacity=100, tenant_rate=1.0, tenant_burst=2.0
        )
        queue.submit(entry("noisy", clock=clock))
        queue.submit(entry("noisy", clock=clock))
        with pytest.raises(TenantQuotaExceeded):
            queue.submit(entry("noisy", clock=clock))
        # The quiet tenant is unaffected by the noisy one's empty bucket.
        queue.submit(entry("quiet", clock=clock))
        assert queue.stats.total("rejected_quota") == 1

    def test_quota_is_a_kind_of_overload(self):
        # Generic shed handling (except ServerOverloaded) catches quotas.
        assert issubclass(TenantQuotaExceeded, ServerOverloaded)


# ---------------------------------------------------------------------- #
# Fair dequeue
# ---------------------------------------------------------------------- #

class TestFairDequeue:
    def test_fifo_within_one_tenant(self):
        queue = make_queue(capacity=10)
        entries = [entry("a") for _ in range(3)]
        for item in entries:
            queue.submit(item)
        taken = [queue.take(timeout=0.1) for _ in range(3)]
        assert [t.id for t in taken] == [e.id for e in entries]

    def test_flood_does_not_starve_light_tenant(self):
        # Tenant a floods 6 requests, then b submits 2: SFQ interleaves
        # b's requests ahead of a's backlog instead of FIFO-starving b.
        queue = make_queue(capacity=20)
        for _ in range(6):
            queue.submit(entry("a"))
        for _ in range(2):
            queue.submit(entry("b"))
        order = [queue.take(timeout=0.1).tenant for _ in range(8)]
        # Both of b's requests are served within the first four slots.
        assert order[:4].count("b") == 2

    def test_weights_skew_the_share(self):
        weights = {"gold": 3.0, "bronze": 1.0}
        queue = make_queue(
            capacity=40, weight_for=lambda t: weights.get(t, 1.0)
        )
        for _ in range(9):
            queue.submit(entry("gold"))
            queue.submit(entry("bronze"))
        first_eight = [queue.take(timeout=0.1).tenant for _ in range(8)]
        # Weight 3 vs 1: gold gets ~3x the early slots.
        assert first_eight.count("gold") >= 5

    def test_take_times_out_empty(self):
        queue = make_queue()
        assert queue.take(timeout=0.01) is None


# ---------------------------------------------------------------------- #
# Deadlines, cancellation, accounting
# ---------------------------------------------------------------------- #

class TestLifecycle:
    def test_expired_queued_entry_never_starts(self):
        clock = FakeClock()
        queue = make_queue(clock=clock, capacity=10)
        stale = entry("a", deadline=1.0, clock=clock)
        queue.submit(stale)
        fresh = entry("a", deadline=100.0, clock=clock)
        queue.submit(fresh)
        clock.advance(5.0)
        taken = queue.take(timeout=0.1)
        assert taken is fresh
        assert stale.done.is_set()
        assert isinstance(stale.error, DeadlineExceeded)
        assert queue.stats.total("deadline_expired") == 1
        # Its budget was released with it.
        assert queue.inflight_bytes == fresh.nbytes

    def test_cancel_queued_frees_slot_immediately(self):
        queue = make_queue(capacity=2)
        first = entry()
        queue.submit(first)
        queue.submit(entry())
        queue.cancel(first)
        assert first.done.is_set()
        assert queue.depth == 1
        queue.submit(entry())  # the freed slot is reusable
        assert queue.stats.total("cancelled") == 1

    def test_no_leak_after_many_abandoned(self):
        # The satellite contract: 100 abandoned requests leave zero
        # queued entries and zero in-flight bytes behind.
        queue = make_queue(capacity=200, max_bytes=10**9)
        entries = [entry(nbytes=1000) for _ in range(100)]
        for item in entries:
            queue.submit(item)
        for item in entries:
            queue.cancel(item)
        assert queue.depth == 0
        assert queue.inflight_bytes == 0
        assert queue.idle()

    def test_cancel_running_marks_abandoned_and_releases_on_finish(self):
        queue = make_queue()
        item = entry(nbytes=50)
        queue.submit(item)
        taken = queue.take(timeout=0.1)
        queue.cancel(taken)
        assert taken.abandoned
        assert queue.inflight_bytes == 50  # still running
        queue.finish(taken, {"x": 1})
        assert queue.inflight_bytes == 0
        # Abandoned completions don't count as served.
        assert queue.stats.total("completed") == 0

    def test_finish_and_fail_release_bytes_once(self):
        queue = make_queue()
        good, bad = entry(nbytes=30), entry(nbytes=20)
        queue.submit(good)
        queue.submit(bad)
        a = queue.take(timeout=0.1)
        b = queue.take(timeout=0.1)
        queue.finish(a, "ok")
        queue.fail(b, RuntimeError("boom"))
        queue.finish(a, "again")  # double-complete is a no-op
        assert queue.inflight_bytes == 0
        assert queue.stats.total("completed") == 1
        assert queue.stats.total("failed") == 1
        assert queue.idle()

    def test_wait_idle(self):
        queue = make_queue()
        item = entry()
        queue.submit(item)
        assert not queue.wait_idle(timeout=0.01)
        taken = queue.take(timeout=0.1)
        queue.finish(taken, None)
        assert queue.wait_idle(timeout=0.1)


# ---------------------------------------------------------------------- #
# Batch collection
# ---------------------------------------------------------------------- #

class TestCollectBatch:
    def test_collects_only_matching_keys(self):
        queue = make_queue(capacity=10)
        key = ("objective", "p", 0)
        matching = [entry("a", batch_key=key) for _ in range(3)]
        other = entry("a", batch_key=("objective", "q", 0))
        for item in matching:
            queue.submit(item)
        queue.submit(other)
        head = queue.take(timeout=0.1)
        group = queue.collect_batch(head, limit=8)
        assert {g.id for g in group} == {m.id for m in matching}
        assert other.state == QUEUED

    def test_limit_respected(self):
        queue = make_queue(capacity=10)
        key = ("objective", "p", 0)
        for _ in range(5):
            queue.submit(entry("a", batch_key=key))
        head = queue.take(timeout=0.1)
        group = queue.collect_batch(head, limit=3)
        assert len(group) == 3
        assert queue.depth == 2

    def test_cross_tenant_batching(self):
        queue = make_queue(capacity=10)
        key = ("objective", "p", 0)
        queue.submit(entry("a", batch_key=key))
        queue.submit(entry("b", batch_key=key))
        head = queue.take(timeout=0.1)
        group = queue.collect_batch(head, limit=8)
        assert sorted(g.tenant for g in group) == ["a", "b"]

    def test_none_key_never_batches(self):
        queue = make_queue(capacity=10)
        queue.submit(entry("a", batch_key=None))
        queue.submit(entry("a", batch_key=None))
        head = queue.take(timeout=0.1)
        assert queue.collect_batch(head, limit=8) == [head]

    def test_expired_member_finalized_not_batched(self):
        clock = FakeClock()
        queue = make_queue(clock=clock, capacity=10)
        key = ("objective", "p", 0)
        fresh = entry("a", batch_key=key, clock=clock)
        stale = entry("a", batch_key=key, deadline=1.0, clock=clock)
        queue.submit(fresh)
        queue.submit(stale)
        clock.advance(2.0)
        head = queue.take(timeout=0.1)
        group = queue.collect_batch(head, limit=8)
        assert group == [head]
        assert isinstance(stale.error, DeadlineExceeded)


# ---------------------------------------------------------------------- #
# Stats
# ---------------------------------------------------------------------- #

class TestStats:
    def test_percentile_nearest_rank(self):
        assert percentile([], 50) == 0.0
        assert percentile([5.0], 99) == 5.0
        samples = list(range(1, 101))
        assert percentile(samples, 50) == pytest.approx(50, abs=1)
        assert percentile(samples, 99) == pytest.approx(99, abs=1)

    def test_snapshot_and_summary_roundtrip(self):
        stats = ServeStats()
        stats.bump("a", "requests", 3)
        stats.bump("a", "completed", 2)
        stats.bump("b", "requests")
        stats.bump("b", "rejected_overload")
        stats.record_wait("a", 0.010)
        stats.record_wait("a", 0.020)
        snap = stats.snapshot()
        assert snap["totals"]["requests"] == 4
        assert snap["tenants"]["b"]["rejected_overload"] == 1
        line = stats.summary()
        assert "4 requests" in line and "2 tenants" in line
        assert "1 rejected" in line
        # The remote renderer (CLI from the health endpoint) matches the
        # in-process one exactly.
        assert ServeStats.summary_from_snapshot(snap) == line

    def test_unknown_counter_rejected(self):
        with pytest.raises(KeyError):
            ServeStats().bump("a", "nonsense")
