"""Unit tests of the serving daemon's admission queue (DESIGN.md §13).

The queue is the robustness core: depth + byte bounds, per-tenant token
buckets, start-time-fair dequeue, deadline finalization of queued
entries, and the no-leak cancellation contract.  Everything here runs
single-threaded with an injected fake clock — determinism over sockets.
"""

from __future__ import annotations

import pytest

from repro.serve.queue import (
    AdmissionQueue,
    PRIORITY_WEIGHTS,
    QUEUED,
    RUNNING,
    RequestEntry,
    TokenBucket,
)
from repro.serve.stats import PRIORITIES, ServeStats, percentile
from repro.utils.errors import (
    DeadlineExceeded,
    ServerDraining,
    ServerOverloaded,
    TenantQuotaExceeded,
    ValidationError,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make_queue(clock=None, **overrides) -> AdmissionQueue:
    params = dict(capacity=4, max_bytes=1000, stats=ServeStats())
    if clock is not None:
        params["clock"] = clock
    params.update(overrides)
    return AdmissionQueue(**params)


def entry(tenant="a", nbytes=10, deadline=None, batch_key=None, clock=None,
          priority="normal"):
    kwargs = {}
    if clock is not None:
        kwargs["clock"] = clock
    return RequestEntry(
        tenant=tenant, job={"kind": "objective"}, nbytes=nbytes,
        deadline=deadline, batch_key=batch_key, priority=priority, **kwargs,
    )


# ---------------------------------------------------------------------- #
# Token bucket
# ---------------------------------------------------------------------- #

class TestTokenBucket:
    def test_zero_rate_admits_everything(self):
        bucket = TokenBucket(rate=0.0, burst=1.0)
        assert all(bucket.try_admit() for _ in range(100))

    def test_burst_then_refusal(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=3.0, clock=clock)
        assert [bucket.try_admit() for _ in range(4)] == [
            True, True, True, False,
        ]

    def test_refill_at_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=clock)
        bucket.try_admit()
        bucket.try_admit()
        assert not bucket.try_admit()
        clock.advance(0.5)  # 2/s * 0.5s = 1 token
        assert bucket.try_admit()
        assert not bucket.try_admit()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.try_admit()
        assert bucket.try_admit()
        assert not bucket.try_admit()


# ---------------------------------------------------------------------- #
# Admission gates
# ---------------------------------------------------------------------- #

class TestAdmission:
    def test_capacity_rejection_is_structured(self):
        queue = make_queue(capacity=2)
        queue.submit(entry())
        queue.submit(entry())
        with pytest.raises(ServerOverloaded) as excinfo:
            queue.submit(entry())
        assert excinfo.value.fields["queue_depth"] == 2
        assert queue.stats.total("rejected_overload") == 1

    def test_byte_budget_rejection(self):
        queue = make_queue(capacity=100, max_bytes=100)
        queue.submit(entry(nbytes=80))
        with pytest.raises(ServerOverloaded) as excinfo:
            queue.submit(entry(nbytes=80))
        assert "byte budget" in str(excinfo.value)

    def test_oversize_single_request_admitted_when_empty(self):
        # A request bigger than the whole budget must not deadlock the
        # queue forever: alone, it is admitted.
        queue = make_queue(max_bytes=100)
        queue.submit(entry(nbytes=500))
        assert queue.depth == 1

    def test_draining_rejects_new_admissions(self):
        queue = make_queue()
        queue.drain()
        with pytest.raises(ServerDraining):
            queue.submit(entry())
        assert queue.stats.total("rejected_draining") == 1

    def test_quota_sheds_only_the_noisy_tenant(self):
        clock = FakeClock()
        queue = make_queue(
            clock=clock, capacity=100, tenant_rate=1.0, tenant_burst=2.0
        )
        queue.submit(entry("noisy", clock=clock))
        queue.submit(entry("noisy", clock=clock))
        with pytest.raises(TenantQuotaExceeded):
            queue.submit(entry("noisy", clock=clock))
        # The quiet tenant is unaffected by the noisy one's empty bucket.
        queue.submit(entry("quiet", clock=clock))
        assert queue.stats.total("rejected_quota") == 1

    def test_quota_is_a_kind_of_overload(self):
        # Generic shed handling (except ServerOverloaded) catches quotas.
        assert issubclass(TenantQuotaExceeded, ServerOverloaded)


# ---------------------------------------------------------------------- #
# Fair dequeue
# ---------------------------------------------------------------------- #

class TestFairDequeue:
    def test_fifo_within_one_tenant(self):
        queue = make_queue(capacity=10)
        entries = [entry("a") for _ in range(3)]
        for item in entries:
            queue.submit(item)
        taken = [queue.take(timeout=0.1) for _ in range(3)]
        assert [t.id for t in taken] == [e.id for e in entries]

    def test_flood_does_not_starve_light_tenant(self):
        # Tenant a floods 6 requests, then b submits 2: SFQ interleaves
        # b's requests ahead of a's backlog instead of FIFO-starving b.
        queue = make_queue(capacity=20)
        for _ in range(6):
            queue.submit(entry("a"))
        for _ in range(2):
            queue.submit(entry("b"))
        order = [queue.take(timeout=0.1).tenant for _ in range(8)]
        # Both of b's requests are served within the first four slots.
        assert order[:4].count("b") == 2

    def test_weights_skew_the_share(self):
        weights = {"gold": 3.0, "bronze": 1.0}
        queue = make_queue(
            capacity=40, weight_for=lambda t: weights.get(t, 1.0)
        )
        for _ in range(9):
            queue.submit(entry("gold"))
            queue.submit(entry("bronze"))
        first_eight = [queue.take(timeout=0.1).tenant for _ in range(8)]
        # Weight 3 vs 1: gold gets ~3x the early slots.
        assert first_eight.count("gold") >= 5

    def test_take_times_out_empty(self):
        queue = make_queue()
        assert queue.take(timeout=0.01) is None


# ---------------------------------------------------------------------- #
# Deadlines, cancellation, accounting
# ---------------------------------------------------------------------- #

class TestLifecycle:
    def test_expired_queued_entry_never_starts(self):
        clock = FakeClock()
        queue = make_queue(clock=clock, capacity=10)
        stale = entry("a", deadline=1.0, clock=clock)
        queue.submit(stale)
        fresh = entry("a", deadline=100.0, clock=clock)
        queue.submit(fresh)
        clock.advance(5.0)
        taken = queue.take(timeout=0.1)
        assert taken is fresh
        assert stale.done.is_set()
        assert isinstance(stale.error, DeadlineExceeded)
        assert queue.stats.total("deadline_expired") == 1
        # Its budget was released with it.
        assert queue.inflight_bytes == fresh.nbytes

    def test_cancel_queued_frees_slot_immediately(self):
        queue = make_queue(capacity=2)
        first = entry()
        queue.submit(first)
        queue.submit(entry())
        queue.cancel(first)
        assert first.done.is_set()
        assert queue.depth == 1
        queue.submit(entry())  # the freed slot is reusable
        assert queue.stats.total("cancelled") == 1

    def test_no_leak_after_many_abandoned(self):
        # The satellite contract: 100 abandoned requests leave zero
        # queued entries and zero in-flight bytes behind.
        queue = make_queue(capacity=200, max_bytes=10**9)
        entries = [entry(nbytes=1000) for _ in range(100)]
        for item in entries:
            queue.submit(item)
        for item in entries:
            queue.cancel(item)
        assert queue.depth == 0
        assert queue.inflight_bytes == 0
        assert queue.idle()

    def test_cancel_running_marks_abandoned_and_releases_on_finish(self):
        queue = make_queue()
        item = entry(nbytes=50)
        queue.submit(item)
        taken = queue.take(timeout=0.1)
        queue.cancel(taken)
        assert taken.abandoned
        assert queue.inflight_bytes == 50  # still running
        queue.finish(taken, {"x": 1})
        assert queue.inflight_bytes == 0
        # Abandoned completions don't count as served.
        assert queue.stats.total("completed") == 0

    def test_finish_and_fail_release_bytes_once(self):
        queue = make_queue()
        good, bad = entry(nbytes=30), entry(nbytes=20)
        queue.submit(good)
        queue.submit(bad)
        a = queue.take(timeout=0.1)
        b = queue.take(timeout=0.1)
        queue.finish(a, "ok")
        queue.fail(b, RuntimeError("boom"))
        queue.finish(a, "again")  # double-complete is a no-op
        assert queue.inflight_bytes == 0
        assert queue.stats.total("completed") == 1
        assert queue.stats.total("failed") == 1
        assert queue.idle()

    def test_wait_idle(self):
        queue = make_queue()
        item = entry()
        queue.submit(item)
        assert not queue.wait_idle(timeout=0.01)
        taken = queue.take(timeout=0.1)
        queue.finish(taken, None)
        assert queue.wait_idle(timeout=0.1)


# ---------------------------------------------------------------------- #
# Batch collection
# ---------------------------------------------------------------------- #

class TestCollectBatch:
    def test_collects_only_matching_keys(self):
        queue = make_queue(capacity=10)
        key = ("objective", "p", 0)
        matching = [entry("a", batch_key=key) for _ in range(3)]
        other = entry("a", batch_key=("objective", "q", 0))
        for item in matching:
            queue.submit(item)
        queue.submit(other)
        head = queue.take(timeout=0.1)
        group = queue.collect_batch(head, limit=8)
        assert {g.id for g in group} == {m.id for m in matching}
        assert other.state == QUEUED

    def test_limit_respected(self):
        queue = make_queue(capacity=10)
        key = ("objective", "p", 0)
        for _ in range(5):
            queue.submit(entry("a", batch_key=key))
        head = queue.take(timeout=0.1)
        group = queue.collect_batch(head, limit=3)
        assert len(group) == 3
        assert queue.depth == 2

    def test_cross_tenant_batching(self):
        queue = make_queue(capacity=10)
        key = ("objective", "p", 0)
        queue.submit(entry("a", batch_key=key))
        queue.submit(entry("b", batch_key=key))
        head = queue.take(timeout=0.1)
        group = queue.collect_batch(head, limit=8)
        assert sorted(g.tenant for g in group) == ["a", "b"]

    def test_none_key_never_batches(self):
        queue = make_queue(capacity=10)
        queue.submit(entry("a", batch_key=None))
        queue.submit(entry("a", batch_key=None))
        head = queue.take(timeout=0.1)
        assert queue.collect_batch(head, limit=8) == [head]

    def test_expired_member_finalized_not_batched(self):
        clock = FakeClock()
        queue = make_queue(clock=clock, capacity=10)
        key = ("objective", "p", 0)
        fresh = entry("a", batch_key=key, clock=clock)
        stale = entry("a", batch_key=key, deadline=1.0, clock=clock)
        queue.submit(fresh)
        queue.submit(stale)
        clock.advance(2.0)
        head = queue.take(timeout=0.1)
        group = queue.collect_batch(head, limit=8)
        assert group == [head]
        assert isinstance(stale.error, DeadlineExceeded)


# ---------------------------------------------------------------------- #
# Stats
# ---------------------------------------------------------------------- #

class TestStats:
    def test_percentile_nearest_rank(self):
        assert percentile([], 50) == 0.0
        assert percentile([5.0], 99) == 5.0
        samples = list(range(1, 101))
        assert percentile(samples, 50) == pytest.approx(50, abs=1)
        assert percentile(samples, 99) == pytest.approx(99, abs=1)

    def test_snapshot_and_summary_roundtrip(self):
        stats = ServeStats()
        stats.bump("a", "requests", 3)
        stats.bump("a", "completed", 2)
        stats.bump("b", "requests")
        stats.bump("b", "rejected_overload")
        stats.record_wait("a", 0.010)
        stats.record_wait("a", 0.020)
        snap = stats.snapshot()
        assert snap["totals"]["requests"] == 4
        assert snap["tenants"]["b"]["rejected_overload"] == 1
        line = stats.summary()
        assert "4 requests" in line and "2 tenants" in line
        assert "1 rejected" in line
        # The remote renderer (CLI from the health endpoint) matches the
        # in-process one exactly.
        assert ServeStats.summary_from_snapshot(snap) == line

    def test_unknown_counter_rejected(self):
        with pytest.raises(KeyError):
            ServeStats().bump("a", "nonsense")

    def test_percentile_edge_ranks(self):
        # Nearest-rank at the extremes: empty, singleton, q=0/q=100,
        # and the two-sample rounding boundary.
        assert percentile([], 0) == 0.0
        assert percentile([], 100) == 0.0
        assert percentile([7.0], 0) == 7.0
        assert percentile([7.0], 100) == 7.0
        assert percentile([1.0, 2.0], 0) == 1.0
        assert percentile([1.0, 2.0], 100) == 2.0
        assert percentile([1.0, 2.0], 49) == 1.0
        assert percentile([1.0, 2.0], 51) == 2.0
        # Input order must not matter.
        assert percentile([9.0, 1.0, 5.0], 100) == 9.0


class TestMergeSnapshots:
    def test_heterogeneous_tenants_and_percentiles(self):
        a, b = ServeStats(), ServeStats()
        a.bump("acme", "requests", 3)
        a.bump("acme", "completed", 2)
        a.record_wait("acme", 0.100)
        b.bump("acme", "requests", 1)
        b.bump("zeta", "requests", 5)  # tenant known to one daemon only
        b.record_wait("zeta", 0.400)
        merged = ServeStats.merge_snapshots([a.snapshot(), b.snapshot()])
        assert merged["totals"]["requests"] == 9
        assert merged["tenants"]["acme"]["requests"] == 4
        assert merged["tenants"]["zeta"]["requests"] == 5
        # Percentiles take the fleet max, never a sum.
        assert merged["totals"]["queue_wait_p99_ms"] == pytest.approx(400.0)
        assert merged["tenants"]["acme"]["queue_wait_p99_ms"] == (
            pytest.approx(100.0)
        )

    def test_old_wire_snapshots_missing_keys_read_as_zero(self):
        # A pre-result-cache / pre-priority daemon's snapshot has no
        # "result_hits" counter and no "priorities" section; a mixed
        # fleet must still aggregate and render.
        old = {
            "totals": {"requests": 2, "completed": 2,
                       "rejected_overload": 0, "rejected_quota": 0,
                       "rejected_draining": 0, "deadline_expired": 0,
                       "batched": 1, "queue_wait_p50_ms": 1.0,
                       "queue_wait_p99_ms": 2.0},
            "tenants": {"acme": {"requests": 2, "completed": 2,
                                 "queue_wait_p99_ms": 2.0}},
        }
        new = ServeStats()
        new.bump("acme", "result_hits")
        new.record_wait("acme", 0.001, priority="interactive")
        merged = ServeStats.merge_snapshots([old, new.snapshot()])
        assert merged["totals"]["requests"] == 2
        assert merged["totals"]["result_hits"] == 1
        assert merged["tenants"]["acme"]["result_hits"] == 1
        assert merged["priorities"]["interactive"]["served"] == 1
        assert merged["priorities"]["batch"]["served"] == 0
        line = ServeStats.summary_from_snapshot(merged)
        assert "1 result-cache hits" in line

    def test_empty_merge_still_renders(self):
        merged = ServeStats.merge_snapshots([])
        assert merged["totals"]["requests"] == 0
        assert all(name in merged["priorities"] for name in PRIORITIES)
        assert "0 requests" in ServeStats.summary_from_snapshot(merged)

    def test_priority_waits_surface_in_snapshot(self):
        stats = ServeStats()
        stats.record_wait("a", 0.010, priority="interactive")
        stats.record_wait("a", 0.500, priority="batch")
        snap = stats.snapshot()
        assert snap["priorities"]["interactive"]["served"] == 1
        assert snap["priorities"]["interactive"]["queue_wait_p99_ms"] == (
            pytest.approx(10.0)
        )
        assert snap["priorities"]["batch"]["queue_wait_p99_ms"] == (
            pytest.approx(500.0)
        )
        assert snap["priorities"]["normal"]["served"] == 0


# ---------------------------------------------------------------------- #
# Injected clock (regression: entries must never read the real clock)
# ---------------------------------------------------------------------- #

class TestClockInjection:
    def test_remaining_and_expired_use_the_injected_clock(self):
        # Regression: RequestEntry stored expires_at from the injected
        # clock but read time.monotonic() in remaining()/expired(), so
        # under a fake clock every deadline looked already expired
        # (real monotonic time >> fake 0.0).
        clock = FakeClock(0.0)
        item = entry(deadline=5.0, clock=clock)
        assert item.remaining() == pytest.approx(5.0)
        assert not item.expired()
        clock.advance(4.0)
        assert item.remaining() == pytest.approx(1.0)
        clock.advance(2.0)
        assert item.expired()
        assert item.remaining() == pytest.approx(-1.0)

    def test_no_deadline_is_unbounded(self):
        clock = FakeClock(0.0)
        item = entry(deadline=None, clock=clock)
        clock.advance(1e9)
        assert not item.expired()
        assert item.remaining() is None


# ---------------------------------------------------------------------- #
# Priority classes
# ---------------------------------------------------------------------- #

class TestPriorities:
    def test_unknown_priority_rejected_at_construction(self):
        with pytest.raises(ValidationError):
            entry(priority="urgent")

    def test_weights_cover_all_classes(self):
        assert set(PRIORITY_WEIGHTS) == set(PRIORITIES)
        assert (
            PRIORITY_WEIGHTS["interactive"]
            > PRIORITY_WEIGHTS["normal"]
            > PRIORITY_WEIGHTS["batch"]
        )

    def test_interactive_overtakes_batch_backlog_same_tenant(self):
        # One tenant floods batch work, then submits interactive: the
        # interactive request jumps the backlog because its flow's
        # finish tags grow 16x slower.
        queue = make_queue(capacity=20)
        for _ in range(6):
            queue.submit(entry("a", priority="batch"))
        urgent = entry("a", priority="interactive")
        queue.submit(urgent)
        assert queue.take(timeout=0.1) is urgent

    def test_priorities_are_separate_flows(self):
        # Same tenant, two classes: FIFO holds within each class but
        # not across them.
        queue = make_queue(capacity=20)
        first_batch = entry("a", priority="batch")
        queue.submit(first_batch)
        second_batch = entry("a", priority="batch")
        queue.submit(second_batch)
        normal = entry("a", priority="normal")
        queue.submit(normal)
        assert first_batch.flow == ("a", "batch")
        assert normal.flow == ("a", "normal")
        taken = [queue.take(timeout=0.1) for _ in range(3)]
        assert taken[0] is normal  # weight 1.0 vs 0.25
        assert taken[1:] == [first_batch, second_batch]  # FIFO in-flow

    def test_aging_bounds_batch_starvation(self):
        # Without aging a steady interactive stream starves batch
        # forever; with aging the batch head's rank decays with queue
        # wait and eventually wins a slot.
        clock = FakeClock()
        queue = make_queue(clock=clock, capacity=20, priority_aging=0.1)
        stale = entry("a", priority="batch", clock=clock)
        queue.submit(stale)  # finish tag = 1/0.25 = 4.0
        clock.advance(100.0)
        fresh = entry("a", priority="interactive", clock=clock)
        queue.submit(fresh)  # finish tag = 0.25, but zero wait
        # rank(stale) = 4.0 - 0.1*100 = -6.0 < rank(fresh) = 0.25
        assert queue.take(timeout=0.1) is stale

    def test_no_aging_prefers_interactive_regardless_of_wait(self):
        clock = FakeClock()
        queue = make_queue(clock=clock, capacity=20, priority_aging=0.0)
        stale = entry("a", priority="batch", clock=clock)
        queue.submit(stale)
        clock.advance(100.0)
        fresh = entry("a", priority="interactive", clock=clock)
        queue.submit(fresh)
        assert queue.take(timeout=0.1) is fresh

    def test_collect_batch_never_mixes_priorities(self):
        # Coalescing a batch-class entry into an interactive group
        # would defeat the class separation.
        queue = make_queue(capacity=10)
        key = ("objective", "p", 0)
        head = entry("a", batch_key=key, priority="interactive")
        rider = entry("a", batch_key=key, priority="interactive")
        freight = entry("a", batch_key=key, priority="batch")
        for item in (head, rider, freight):
            queue.submit(item)
        taken = queue.take(timeout=0.1)
        assert taken is head
        group = queue.collect_batch(head, limit=8)
        assert {g.id for g in group} == {head.id, rider.id}
        assert freight.state == QUEUED

    def test_cancel_and_deadline_work_on_priority_flows(self):
        clock = FakeClock()
        queue = make_queue(clock=clock, capacity=10)
        doomed = entry(
            "a", priority="interactive", deadline=1.0, clock=clock
        )
        queue.submit(doomed)
        cancelled = entry("a", priority="normal", clock=clock)
        queue.submit(cancelled)
        survivor = entry("a", priority="batch", clock=clock)
        queue.submit(survivor)
        queue.cancel(cancelled)
        clock.advance(5.0)
        # The expired interactive head is finalized on the way to the
        # surviving batch entry.
        assert queue.take(timeout=0.1) is survivor
        assert isinstance(doomed.error, DeadlineExceeded)
        assert queue.depth == 0
        assert queue.inflight_bytes == survivor.nbytes


# ---------------------------------------------------------------------- #
# finish_queued: the result-cache hit path
# ---------------------------------------------------------------------- #

class TestFinishQueued:
    def test_completes_in_place_and_releases_budget(self):
        queue = make_queue(capacity=2)
        hit = entry(nbytes=40)
        queue.submit(hit)
        assert queue.finish_queued(hit, {"cached": True}) is True
        assert hit.done.is_set()
        assert hit.result == {"cached": True}
        assert hit.error is None
        assert queue.depth == 0
        assert queue.inflight_bytes == 0
        assert queue.stats.total("completed") == 1
        assert queue.idle()
        # The freed slot is immediately reusable.
        queue.submit(entry())
        queue.submit(entry())

    def test_races_with_a_worker_returns_false(self):
        queue = make_queue()
        item = entry()
        queue.submit(item)
        taken = queue.take(timeout=0.1)
        assert taken is item and item.state == RUNNING
        assert queue.finish_queued(item, {"cached": True}) is False
        assert not item.done.is_set()
        assert queue.inflight_bytes == item.nbytes  # still running
        queue.finish(item, {"computed": True})
        assert item.result == {"computed": True}

    def test_flow_survivors_still_dequeue_in_order(self):
        queue = make_queue(capacity=10)
        first, second, third = entry(), entry(), entry()
        for item in (first, second, third):
            queue.submit(item)
        assert queue.finish_queued(second, "hit")
        assert queue.take(timeout=0.1) is first
        assert queue.take(timeout=0.1) is third

    def test_records_wait_for_the_priority_class(self):
        clock = FakeClock()
        queue = make_queue(clock=clock, capacity=10)
        item = entry("a", priority="interactive", clock=clock)
        queue.submit(item)
        clock.advance(0.002)
        queue.finish_queued(item, "hit")
        snap = queue.stats.snapshot()
        assert snap["priorities"]["interactive"]["served"] == 1
        assert snap["priorities"]["interactive"]["queue_wait_p99_ms"] == (
            pytest.approx(2.0)
        )
