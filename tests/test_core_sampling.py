"""Tests for the SGLA+ weight-vector sampling scheme."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampling import adjusted_samples, interpolation_samples
from repro.utils.errors import ValidationError


class TestPaperScheme:
    def test_count_is_r_plus_one(self):
        assert len(interpolation_samples(4)) == 5

    def test_first_sample_uniform(self):
        samples = interpolation_samples(5)
        np.testing.assert_allclose(samples[0], np.full(5, 0.2))

    def test_midpoint_values_match_paper(self):
        """w_l has value (r+1)/(2r) at position l-1 and 1/(2r) elsewhere."""
        r = 4
        samples = interpolation_samples(r)
        for view in range(r):
            sample = samples[view + 1]
            assert sample[view] == pytest.approx((r + 1) / (2 * r))
            others = np.delete(sample, view)
            np.testing.assert_allclose(others, 1 / (2 * r))

    @given(st.integers(min_value=1, max_value=12))
    @settings(max_examples=12, deadline=None)
    def test_all_samples_on_simplex(self, r):
        for sample in interpolation_samples(r):
            assert np.all(sample >= 0)
            assert sample.sum() == pytest.approx(1.0)

    def test_r_zero_rejected(self):
        with pytest.raises(ValidationError):
            interpolation_samples(0)

    def test_yelp_example(self):
        """The paper's Example 4 (r=3) sample values."""
        samples = interpolation_samples(3)
        np.testing.assert_allclose(samples[0], [1 / 3] * 3)
        np.testing.assert_allclose(samples[1], [2 / 3, 1 / 6, 1 / 6])
        np.testing.assert_allclose(samples[2], [1 / 6, 2 / 3, 1 / 6])
        np.testing.assert_allclose(samples[3], [1 / 6, 1 / 6, 2 / 3])


class TestAdjustedSamples:
    def test_zero_delta_is_paper_scheme(self):
        base = interpolation_samples(3)
        adjusted = adjusted_samples(3, delta_s=0)
        assert len(adjusted) == len(base)
        for a, b in zip(adjusted, base):
            np.testing.assert_allclose(a, b)

    def test_positive_delta_adds(self):
        samples = adjusted_samples(3, delta_s=5, rng=0)
        assert len(samples) == 9
        for sample in samples:
            assert sample.sum() == pytest.approx(1.0)
            assert np.all(sample >= 0)

    def test_negative_delta_removes_but_keeps_uniform(self):
        samples = adjusted_samples(4, delta_s=-2, rng=0)
        assert len(samples) == 3
        np.testing.assert_allclose(samples[0], np.full(4, 0.25))

    def test_negative_delta_floor(self):
        """At most all non-uniform samples minus one can be dropped."""
        samples = adjusted_samples(3, delta_s=-100, rng=0)
        assert len(samples) >= 2

    def test_deterministic_given_seed(self):
        a = adjusted_samples(3, delta_s=4, rng=9)
        b = adjusted_samples(3, delta_s=4, rng=9)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)
