"""Tests for the from-scratch Hungarian algorithm."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linear_sum_assignment as scipy_assignment

from repro.evaluation.hungarian import assignment_cost, linear_assignment
from repro.utils.errors import ShapeError, ValidationError


def brute_force_min(cost):
    n_rows, n_cols = cost.shape
    best = np.inf
    for perm in itertools.permutations(range(n_cols), n_rows):
        total = sum(cost[i, j] for i, j in enumerate(perm))
        best = min(best, total)
    return best


class TestKnownCases:
    def test_identity_cost(self):
        cost = 1.0 - np.eye(3)
        rows, cols = linear_assignment(cost)
        np.testing.assert_array_equal(rows, [0, 1, 2])
        np.testing.assert_array_equal(cols, [0, 1, 2])

    def test_antidiagonal(self):
        cost = np.array([[9.0, 1.0], [1.0, 9.0]])
        rows, cols = linear_assignment(cost)
        assert assignment_cost(cost, rows, cols) == pytest.approx(2.0)

    def test_rectangular_wide(self):
        cost = np.array([[4.0, 1.0, 3.0], [2.0, 0.0, 5.0]])
        rows, cols = linear_assignment(cost)
        assert rows.shape == (2,)
        assert assignment_cost(cost, rows, cols) == pytest.approx(
            brute_force_min(cost)
        )

    def test_rectangular_tall(self):
        cost = np.array([[4.0, 1.0], [2.0, 0.0], [3.0, 2.0]])
        rows, cols = linear_assignment(cost)
        assert rows.shape == (2,)
        expected_rows, expected_cols = scipy_assignment(cost)
        expected = cost[expected_rows, expected_cols].sum()
        assert assignment_cost(cost, rows, cols) == pytest.approx(expected)

    def test_empty(self):
        rows, cols = linear_assignment(np.zeros((0, 0)))
        assert rows.size == 0 and cols.size == 0


class TestValidation:
    def test_1d_rejected(self):
        with pytest.raises(ShapeError):
            linear_assignment(np.ones(3))

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            linear_assignment(np.array([[np.nan, 1.0], [1.0, 0.0]]))


class TestAgainstScipyAndBruteForce:
    @given(
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=5),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_scipy(self, n_rows, n_cols, seed):
        rng = np.random.default_rng(seed)
        cost = rng.random((n_rows, n_cols)) * 10
        rows, cols = linear_assignment(cost)
        scipy_rows, scipy_cols = scipy_assignment(cost)
        ours = assignment_cost(cost, rows, cols)
        scipys = cost[scipy_rows, scipy_cols].sum()
        assert ours == pytest.approx(scipys, abs=1e-9)

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_matches_brute_force_square(self, seed):
        rng = np.random.default_rng(seed)
        cost = rng.integers(0, 20, size=(4, 4)).astype(float)
        rows, cols = linear_assignment(cost)
        assert assignment_cost(cost, rows, cols) == pytest.approx(
            brute_force_min(cost)
        )

    def test_negative_costs(self):
        cost = np.array([[-5.0, 0.0], [0.0, -5.0]])
        rows, cols = linear_assignment(cost)
        assert assignment_cost(cost, rows, cols) == pytest.approx(-10.0)
