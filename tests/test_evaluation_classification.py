"""Tests for logistic regression, splits, and the Table IV protocol."""

import numpy as np
import pytest

from repro.evaluation.classification import (
    LogisticRegression,
    classification_report,
    evaluate_embedding,
    train_test_split_stratified,
)
from repro.utils.errors import NotFittedError, ValidationError


def blobs(k=3, per_class=40, separation=4.0, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((k, 5)) * separation
    features = np.vstack(
        [centers[c] + rng.standard_normal((per_class, 5)) for c in range(k)]
    )
    labels = np.repeat(np.arange(k), per_class)
    return features, labels


class TestSplit:
    def test_fraction_respected(self):
        labels = np.repeat([0, 1], 50)
        train, test = train_test_split_stratified(labels, 0.2, seed=0)
        assert train.size == 20
        assert test.size == 80

    def test_stratification(self):
        labels = np.array([0] * 90 + [1] * 10)
        train, _ = train_test_split_stratified(labels, 0.2, seed=0)
        assert (labels[train] == 1).sum() == 2

    def test_every_class_in_train(self):
        labels = np.array([0] * 50 + [1] * 2)
        train, _ = train_test_split_stratified(labels, 0.02, seed=0)
        assert set(labels[train]) == {0, 1}

    def test_disjoint_and_complete(self):
        labels = np.repeat(np.arange(4), 25)
        train, test = train_test_split_stratified(labels, 0.3, seed=1)
        assert set(train) & set(test) == set()
        assert len(set(train) | set(test)) == 100

    def test_deterministic(self):
        labels = np.repeat([0, 1, 2], 20)
        a = train_test_split_stratified(labels, 0.2, seed=5)
        b = train_test_split_stratified(labels, 0.2, seed=5)
        np.testing.assert_array_equal(a[0], b[0])

    def test_bad_fraction(self):
        with pytest.raises(ValidationError):
            train_test_split_stratified([0, 1], 0.0)


class TestLogisticRegression:
    def test_separable_data_high_accuracy(self):
        features, labels = blobs(separation=6.0, seed=1)
        model = LogisticRegression().fit(features, labels)
        predictions = model.predict(features)
        assert (predictions == labels).mean() > 0.98

    def test_probabilities_sum_to_one(self):
        features, labels = blobs(seed=2)
        model = LogisticRegression().fit(features, labels)
        probabilities = model.predict_proba(features)
        np.testing.assert_allclose(probabilities.sum(axis=1), 1.0, atol=1e-9)

    def test_binary(self):
        features, labels = blobs(k=2, seed=3)
        model = LogisticRegression().fit(features, labels)
        assert set(model.predict(features)) <= {0, 1}

    def test_original_label_space_preserved(self):
        features, labels = blobs(k=2, seed=4)
        shifted = labels * 10 + 5
        model = LogisticRegression().fit(features, shifted)
        assert set(model.predict(features)) <= {5, 15}

    def test_predict_before_fit(self):
        with pytest.raises(NotFittedError):
            LogisticRegression().predict(np.ones((2, 2)))

    def test_l2_shrinks_weights(self):
        features, labels = blobs(k=2, seed=5)
        loose = LogisticRegression(l2=1e-6).fit(features, labels)
        tight = LogisticRegression(l2=10.0).fit(features, labels)
        assert np.linalg.norm(tight.weights_) < np.linalg.norm(loose.weights_)

    def test_negative_l2_rejected(self):
        with pytest.raises(ValidationError):
            LogisticRegression(l2=-1.0)


class TestClassificationReport:
    def test_perfect(self):
        report = classification_report([0, 1, 2], [0, 1, 2])
        assert report["macro_f1"] == 1.0
        assert report["micro_f1"] == 1.0

    def test_hand_computed_micro(self):
        # 3 of 4 correct -> micro-F1 = accuracy for single-label tasks.
        report = classification_report([0, 0, 1, 1], [0, 0, 1, 0])
        assert report["micro_f1"] == pytest.approx(0.75)

    def test_macro_penalizes_minority_errors(self):
        truth = [0] * 98 + [1] * 2
        pred = [0] * 100
        report = classification_report(truth, pred)
        assert report["micro_f1"] > 0.9
        assert report["macro_f1"] < 0.6


class TestEvaluateEmbedding:
    def test_protocol(self):
        features, labels = blobs(separation=5.0, seed=6)
        report = evaluate_embedding(features, labels, train_fraction=0.2, seed=0)
        assert report["micro_f1"] > 0.95
        assert report["macro_f1"] > 0.95

    def test_deterministic(self):
        features, labels = blobs(seed=7)
        a = evaluate_embedding(features, labels, seed=3)
        b = evaluate_embedding(features, labels, seed=3)
        assert a == b

    def test_noise_embedding_scores_low(self):
        rng = np.random.default_rng(8)
        features = rng.standard_normal((120, 8))
        labels = np.repeat(np.arange(3), 40)
        report = evaluate_embedding(features, labels, seed=0)
        assert report["micro_f1"] < 0.6
