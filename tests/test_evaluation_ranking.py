"""Tests for the overall-rank aggregation (Tables III/IV last column)."""

import pytest

from repro.evaluation.ranking import overall_ranks


class TestOverallRanks:
    def test_simple_ordering(self):
        table = {
            "best": {"d1": {"acc": 0.9}, "d2": {"acc": 0.8}},
            "worst": {"d1": {"acc": 0.1}, "d2": {"acc": 0.2}},
        }
        ranks = overall_ranks(table)
        assert ranks["best"] == 1.0
        assert ranks["worst"] == 2.0

    def test_ties_share_average_rank(self):
        table = {
            "a": {"d": {"m": 0.5}},
            "b": {"d": {"m": 0.5}},
            "c": {"d": {"m": 0.1}},
        }
        ranks = overall_ranks(table)
        assert ranks["a"] == ranks["b"] == pytest.approx(1.5)
        assert ranks["c"] == 3.0

    def test_missing_values_rank_worst(self):
        table = {
            "works": {"d": {"m": 0.5}},
            "oom": {"d": {"m": None}},
        }
        ranks = overall_ranks(table)
        assert ranks["works"] == 1.0
        assert ranks["oom"] == 2.0

    def test_lower_is_better_direction(self):
        table = {
            "fast": {"d": {"time": 1.0}},
            "slow": {"d": {"time": 100.0}},
        }
        ranks = overall_ranks(table, higher_is_better=False)
        assert ranks["fast"] == 1.0

    def test_multiple_metrics_averaged(self):
        table = {
            "a": {"d": {"acc": 1.0, "nmi": 0.0}},
            "b": {"d": {"acc": 0.0, "nmi": 1.0}},
        }
        ranks = overall_ranks(table)
        assert ranks["a"] == pytest.approx(1.5)
        assert ranks["b"] == pytest.approx(1.5)

    def test_paper_shape_sgla_ranks_best(self):
        """A miniature Table III: SGLA tops most cells, baseline wins one."""
        table = {
            "sgla": {
                "rm": {"acc": 0.97, "nmi": 0.83},
                "yelp": {"acc": 0.93, "nmi": 0.73},
            },
            "mcgc": {
                "rm": {"acc": 0.96, "nmi": 0.80},
                "yelp": {"acc": 0.86, "nmi": 0.60},
            },
            "wmsc": {
                "rm": {"acc": 0.63, "nmi": 0.001},
                "yelp": {"acc": 0.81, "nmi": 0.54},
            },
        }
        ranks = overall_ranks(table)
        assert ranks["sgla"] < ranks["mcgc"] < ranks["wmsc"]
