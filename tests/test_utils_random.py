"""Tests for repro.utils.random."""

import numpy as np
import pytest

from repro.utils.errors import ValidationError
from repro.utils.random import (
    check_random_state,
    random_simplex_point,
    spawn_rngs,
)


class TestCheckRandomState:
    def test_none_gives_generator(self):
        assert isinstance(check_random_state(None), np.random.Generator)

    def test_int_is_deterministic(self):
        a = check_random_state(42).random(5)
        b = check_random_state(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert check_random_state(generator) is generator

    def test_rejects_strings(self):
        with pytest.raises(ValidationError):
            check_random_state("seed")


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(0, 5)) == 5

    def test_streams_differ(self):
        rngs = spawn_rngs(0, 2)
        assert rngs[0].random() != rngs[1].random()

    def test_deterministic(self):
        first = [rng.random() for rng in spawn_rngs(7, 3)]
        second = [rng.random() for rng in spawn_rngs(7, 3)]
        assert first == second

    def test_negative_count_rejected(self):
        with pytest.raises(ValidationError):
            spawn_rngs(0, -1)

    def test_zero_count(self):
        assert spawn_rngs(0, 0) == []


class TestRandomSimplexPoint:
    def test_on_simplex(self):
        point = random_simplex_point(6, rng=3)
        assert np.all(point >= 0)
        assert abs(point.sum() - 1.0) < 1e-12

    def test_dim_one(self):
        np.testing.assert_allclose(random_simplex_point(1, rng=0), [1.0])

    def test_bad_dim(self):
        with pytest.raises(ValidationError):
            random_simplex_point(0)
