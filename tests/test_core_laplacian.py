"""Tests for normalized Laplacians and weighted aggregation."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.laplacian import (
    aggregate_adjacencies,
    aggregate_laplacians,
    build_view_laplacians,
    normalized_adjacency,
    normalized_laplacian,
)
from repro.core.mvag import MVAG
from repro.utils.errors import ShapeError, ValidationError
from repro.utils.sparse import is_symmetric, to_dense


def path_graph(n):
    adjacency = sp.lil_matrix((n, n))
    for i in range(n - 1):
        adjacency[i, i + 1] = adjacency[i + 1, i] = 1.0
    return adjacency.tocsr()


def complete_graph(n):
    return sp.csr_matrix(np.ones((n, n)) - np.eye(n))


class TestNormalizedLaplacian:
    def test_complete_graph_spectrum(self):
        """K_n has eigenvalues {0, n/(n-1) x (n-1)}."""
        n = 6
        laplacian = normalized_laplacian(complete_graph(n))
        values = np.sort(np.linalg.eigvalsh(to_dense(laplacian)))
        assert values[0] == pytest.approx(0.0, abs=1e-10)
        np.testing.assert_allclose(values[1:], n / (n - 1), atol=1e-10)

    def test_spectrum_in_unit_interval(self):
        rng = np.random.default_rng(0)
        adjacency = sp.random(30, 30, density=0.2, random_state=1)
        adjacency = adjacency.maximum(adjacency.T)
        adjacency.setdiag(0)
        laplacian = normalized_laplacian(adjacency)
        values = np.linalg.eigvalsh(to_dense(laplacian))
        assert values.min() >= -1e-10
        assert values.max() <= 2.0 + 1e-10

    def test_isolated_node_diagonal_one(self):
        adjacency = sp.csr_matrix((3, 3))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        laplacian = normalized_laplacian(adjacency.tocsr())
        assert laplacian[2, 2] == pytest.approx(1.0)

    def test_connected_graph_has_one_zero_eigenvalue(self):
        laplacian = normalized_laplacian(path_graph(10))
        values = np.sort(np.linalg.eigvalsh(to_dense(laplacian)))
        assert values[0] == pytest.approx(0.0, abs=1e-10)
        assert values[1] > 1e-6

    def test_two_components_two_zero_eigenvalues(self):
        block = to_dense(complete_graph(4))
        adjacency = sp.csr_matrix(np.block([
            [block, np.zeros((4, 4))],
            [np.zeros((4, 4)), block],
        ]))
        values = np.sort(np.linalg.eigvalsh(to_dense(
            normalized_laplacian(adjacency))))
        assert values[1] == pytest.approx(0.0, abs=1e-10)
        assert values[2] > 1e-6

    def test_symmetry(self):
        laplacian = normalized_laplacian(path_graph(12))
        assert is_symmetric(laplacian)

    def test_non_square_rejected(self):
        with pytest.raises(ShapeError):
            normalized_laplacian(np.ones((2, 3)))

    def test_normalized_adjacency_complement(self):
        adjacency = path_graph(8)
        lap = to_dense(normalized_laplacian(adjacency))
        adj_norm = to_dense(normalized_adjacency(adjacency))
        np.testing.assert_allclose(lap + adj_norm, np.eye(8), atol=1e-12)


class TestAggregation:
    def test_single_view_identity(self):
        laplacian = normalized_laplacian(path_graph(5))
        aggregated = aggregate_laplacians([laplacian], [1.0])
        np.testing.assert_allclose(
            to_dense(aggregated), to_dense(laplacian), atol=1e-12
        )

    def test_linear_in_weights(self):
        lap_a = normalized_laplacian(path_graph(6))
        lap_b = normalized_laplacian(complete_graph(6))
        aggregated = aggregate_laplacians([lap_a, lap_b], [0.3, 0.7])
        expected = 0.3 * to_dense(lap_a) + 0.7 * to_dense(lap_b)
        np.testing.assert_allclose(to_dense(aggregated), expected, atol=1e-12)

    def test_weights_validated(self):
        laplacian = normalized_laplacian(path_graph(4))
        with pytest.raises(ValidationError):
            aggregate_laplacians([laplacian], [0.5])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            aggregate_laplacians([], [])

    def test_shape_mismatch_rejected(self):
        lap_a = normalized_laplacian(path_graph(4))
        lap_b = normalized_laplacian(path_graph(5))
        with pytest.raises(ShapeError):
            aggregate_laplacians([lap_a, lap_b], [0.5, 0.5])

    @given(st.integers(0, 1_000_000))
    @settings(max_examples=20, deadline=None)
    def test_aggregated_spectrum_stays_bounded(self, seed):
        """Convex combinations of normalized Laplacians stay PSD with
        spectrum <= 2 — the invariant the whole method rests on."""
        rng = np.random.default_rng(seed)
        views = []
        for _ in range(3):
            raw = sp.random(15, 15, density=0.3,
                            random_state=int(rng.integers(1 << 30)))
            raw = raw.maximum(raw.T)
            raw.setdiag(0)
            views.append(normalized_laplacian(raw))
        weights = rng.dirichlet(np.ones(3))
        values = np.linalg.eigvalsh(to_dense(aggregate_laplacians(views, weights)))
        assert values.min() >= -1e-9
        assert values.max() <= 2.0 + 1e-9


class TestBuildViewLaplacians:
    def test_counts_and_order(self, easy_mvag):
        laplacians = build_view_laplacians(easy_mvag, knn_k=5)
        assert len(laplacians) == easy_mvag.n_views
        for laplacian in laplacians:
            assert laplacian.shape == (easy_mvag.n_nodes,) * 2

    def test_graph_agg_matches_manual(self):
        mvag = MVAG(graph_views=[path_graph(6), complete_graph(6)])
        total = aggregate_adjacencies(mvag)
        expected = to_dense(path_graph(6)) + to_dense(complete_graph(6))
        np.testing.assert_allclose(to_dense(total), expected, atol=1e-12)
