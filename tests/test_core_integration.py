"""Tests for the integration front end and the Fig. 11 alternatives."""

import numpy as np
import pytest

from repro.core.integration import INTEGRATION_METHODS, integrate
from repro.utils.errors import ValidationError


class TestMethods:
    @pytest.mark.parametrize("method", INTEGRATION_METHODS)
    def test_every_method_runs(self, easy_mvag, method):
        result = integrate(easy_mvag, method=method)
        n = easy_mvag.n_nodes
        assert result.laplacian.shape == (n, n)
        assert result.method == method or result.method in (
            "eigengap", "connectivity"
        )

    def test_unknown_method(self, easy_mvag):
        with pytest.raises(ValidationError):
            integrate(easy_mvag, method="bogus")

    def test_equal_weights(self, easy_mvag):
        result = integrate(easy_mvag, method="equal")
        np.testing.assert_allclose(
            result.weights, np.full(easy_mvag.n_views, 1 / easy_mvag.n_views)
        )

    def test_graph_agg_weights_none(self, easy_mvag):
        result = integrate(easy_mvag, method="graph-agg")
        assert result.weights is None

    def test_sgla_records_history(self, easy_mvag):
        result = integrate(easy_mvag, method="sgla")
        assert len(result.history) >= 1
        assert result.objective_value is not None

    def test_single_objective_weights_valid(self, easy_mvag):
        for method in ("eigengap", "connectivity"):
            result = integrate(easy_mvag, method=method)
            assert np.all(result.weights >= -1e-12)
            assert result.weights.sum() == pytest.approx(1.0)

    def test_elapsed_positive(self, easy_mvag):
        for method in INTEGRATION_METHODS:
            result = integrate(easy_mvag, method=method)
            assert result.elapsed_seconds > 0

    def test_spectrum_bound_preserved(self, easy_mvag):
        """All weighted integrators output a matrix with spectrum in [0,2]."""
        from repro.core.eigen import bottom_eigenvalues

        for method in ("sgla", "sgla+", "equal"):
            result = integrate(easy_mvag, method=method)
            values = bottom_eigenvalues(result.laplacian, 3)
            assert values.min() >= -1e-9
