"""Tests for repro.optim.simplex (projections and weight reduction)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.optim.simplex import (
    capped_simplex_violation,
    project_to_capped_simplex,
    project_to_simplex,
    reduce_weights,
    restore_weights,
)
from repro.utils.errors import ValidationError

finite_vectors = hnp.arrays(
    dtype=np.float64,
    shape=st.integers(min_value=1, max_value=8),
    elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
)


class TestProjectToSimplex:
    def test_already_on_simplex(self):
        point = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(project_to_simplex(point), point)

    def test_known_projection(self):
        # Projection of (1, 1) onto the simplex is (0.5, 0.5).
        np.testing.assert_allclose(
            project_to_simplex([1.0, 1.0]), [0.5, 0.5]
        )

    def test_negative_coordinates_zeroed(self):
        result = project_to_simplex([-1.0, 2.0])
        np.testing.assert_allclose(result, [0.0, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            project_to_simplex([])

    @given(finite_vectors)
    @settings(max_examples=60, deadline=None)
    def test_output_on_simplex(self, point):
        result = project_to_simplex(point)
        assert np.all(result >= 0)
        assert abs(result.sum() - 1.0) < 1e-9

    @given(finite_vectors)
    @settings(max_examples=40, deadline=None)
    def test_idempotent(self, point):
        once = project_to_simplex(point)
        twice = project_to_simplex(once)
        np.testing.assert_allclose(once, twice, atol=1e-12)

    @given(
        hnp.arrays(
            dtype=np.float64,
            shape=3,
            elements=st.floats(min_value=-3, max_value=3, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_closest_point_vs_dirichlet_samples(self, point):
        """No random simplex point may be closer than the projection."""
        projection = project_to_simplex(point)
        distance = np.linalg.norm(point - projection)
        rng = np.random.default_rng(0)
        for _ in range(50):
            candidate = rng.dirichlet(np.ones(3))
            assert np.linalg.norm(point - candidate) >= distance - 1e-9


class TestProjectToCappedSimplex:
    def test_interior_point_unchanged(self):
        point = np.array([0.2, 0.3])
        np.testing.assert_allclose(project_to_capped_simplex(point), point)

    def test_negative_clipped(self):
        np.testing.assert_allclose(
            project_to_capped_simplex([-0.5, 0.4]), [0.0, 0.4]
        )

    def test_overflow_projected_to_face(self):
        result = project_to_capped_simplex([0.9, 0.9])
        assert abs(result.sum() - 1.0) < 1e-9

    @given(finite_vectors)
    @settings(max_examples=60, deadline=None)
    def test_always_feasible(self, point):
        result = project_to_capped_simplex(point)
        assert capped_simplex_violation(result) < 1e-9


class TestReduceRestore:
    def test_round_trip(self):
        weights = np.array([0.2, 0.3, 0.5])
        restored = restore_weights(reduce_weights(weights))
        np.testing.assert_allclose(restored, weights)

    def test_restore_normalizes_overflow(self):
        restored = restore_weights([0.8, 0.8])
        assert abs(restored.sum() - 1.0) < 1e-12
        assert np.all(restored >= 0)

    def test_violation_measure(self):
        assert capped_simplex_violation([0.5, 0.4]) == 0.0
        assert capped_simplex_violation([-0.1, 0.4]) == pytest.approx(0.1)
        assert capped_simplex_violation([0.8, 0.8]) == pytest.approx(0.6)
