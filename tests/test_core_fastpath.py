"""Parity and determinism tests for the fast evaluation path.

The fast path (stacked GEMV aggregation + warm-started eigensolves) must be
a pure performance change: every eigenvalue and objective value it produces
has to match the dense ground-truth solver — and the legacy sparse-add
route — to tight tolerance, across view counts, disconnected views, and
zero weights.
"""

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.core.eigen import bottom_eigenpairs, bottom_eigenvalues
from repro.core.fastpath import StackedLaplacians
from repro.core.laplacian import (
    aggregate_laplacians,
    build_view_laplacians,
    normalized_laplacian,
)
from repro.core.objective import SpectralObjective, objective_surface
from repro.core.sgla import SGLA, SGLAConfig
from repro.core.sgla_plus import SGLAPlus
from repro.datasets.generator import generate_mvag
from repro.utils.errors import ShapeError, ValidationError
from repro.utils.sparse import to_dense


def random_laplacians(n, r, seed=0, disconnect_view=None):
    """r random-graph normalized Laplacians; one view optionally split."""
    rng = np.random.default_rng(seed)
    laplacians = []
    for i in range(r):
        raw = sp.random(n, n, density=0.08, random_state=rng.integers(1 << 30))
        raw = raw.maximum(raw.T).tolil()
        raw.setdiag(0)
        if i == disconnect_view:
            # Cut the graph in two: zero every edge crossing the midline.
            half = n // 2
            raw[:half, half:] = 0
            raw[half:, :half] = 0
        laplacians.append(normalized_laplacian(raw.tocsr()))
    return laplacians


def random_simplex_weights(r, rng, zero_out=0):
    weights = rng.random(r)
    if zero_out:
        weights[rng.choice(r, size=min(zero_out, r - 1), replace=False)] = 0.0
    return weights / weights.sum()


class TestStackedLaplacians:
    def test_combine_matches_weighted_sum(self):
        rng = np.random.default_rng(3)
        laplacians = random_laplacians(40, 4, seed=1)
        stack = StackedLaplacians(laplacians)
        for zero_out in (0, 1, 2):
            weights = random_simplex_weights(4, rng, zero_out=zero_out)
            expected = sum(
                w * to_dense(lap) for w, lap in zip(weights, laplacians)
            )
            np.testing.assert_allclose(
                to_dense(stack.combine(weights)), expected, atol=1e-12
            )

    def test_combine_reuses_buffer_aggregate_copies(self):
        laplacians = random_laplacians(25, 3, seed=2)
        stack = StackedLaplacians(laplacians)
        first = stack.combine([1.0, 0.0, 0.0])
        kept = stack.aggregate([1.0, 0.0, 0.0])
        snapshot = kept.data.copy()
        second = stack.combine([0.0, 1.0, 0.0])
        assert first is second  # shared preallocated CSR
        np.testing.assert_array_equal(kept.data, snapshot)  # copy unharmed

    def test_with_data_and_combine_many(self):
        rng = np.random.default_rng(5)
        laplacians = random_laplacians(30, 3, seed=4)
        stack = StackedLaplacians(laplacians)
        rows = np.array(
            [random_simplex_weights(3, rng) for _ in range(6)]
        )
        block = stack.combine_many(rows)
        assert block.shape == (6, stack.nnz)
        for weights, data in zip(rows, block):
            np.testing.assert_allclose(
                to_dense(stack.with_data(data)),
                to_dense(stack.combine(weights)),
                atol=1e-12,
            )

    def test_operator_matches_materialized(self):
        rng = np.random.default_rng(7)
        laplacians = random_laplacians(35, 4, seed=6)
        stack = StackedLaplacians(laplacians)
        weights = random_simplex_weights(4, rng, zero_out=1)
        operator = stack.operator(weights)
        dense = to_dense(stack.combine(weights))
        x = rng.standard_normal(35)
        np.testing.assert_allclose(operator @ x, dense @ x, atol=1e-10)
        block = rng.standard_normal((35, 3))
        np.testing.assert_allclose(operator @ block, dense @ block, atol=1e-10)

    def test_non_canonical_input_duplicates_are_summed(self):
        """Duplicate (row, col) CSR entries must coalesce, not overwrite."""
        duplicated = sp.csr_matrix(
            (
                np.array([1.0, 2.0, 3.0]),
                np.array([1, 1, 0]),
                np.array([0, 2, 3]),
            ),
            shape=(2, 2),
        )  # A[0, 1] stored as two entries summing to 3.0
        plain = sp.csr_matrix(np.array([[0.0, 1.0], [1.0, 0.0]]))
        stack = StackedLaplacians([duplicated, plain])
        expected = 0.5 * to_dense(duplicated) + 0.5 * to_dense(plain)
        np.testing.assert_allclose(
            to_dense(stack.combine([0.5, 0.5])), expected, atol=1e-15
        )
        assert duplicated.nnz == 3  # caller's matrix not mutated

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            StackedLaplacians([])
        with pytest.raises(ShapeError):
            StackedLaplacians([np.ones((2, 3))])
        with pytest.raises(ShapeError):
            StackedLaplacians([np.eye(3), np.eye(4)])
        stack = StackedLaplacians(random_laplacians(10, 2, seed=8))
        with pytest.raises(ShapeError):
            stack.combine([1.0])
        with pytest.raises(ShapeError):
            stack.with_data(np.zeros(stack.nnz + 1))


class TestEigenParity:
    @pytest.mark.parametrize("r", [1, 2, 4, 5])
    def test_fast_path_matches_dense(self, r):
        """Eigenvalues/objective parity across r, vs the dense solver."""
        rng = np.random.default_rng(r)
        laplacians = random_laplacians(60, r, seed=10 + r)
        fast = SpectralObjective(
            laplacians, k=3, gamma=0.5, eigen_method="dense", fast_path=True
        )
        legacy = SpectralObjective(
            laplacians, k=3, gamma=0.5, eigen_method="dense", fast_path=False
        )
        for zero_out in range(min(r, 3)):
            weights = random_simplex_weights(r, rng, zero_out=zero_out)
            fast_parts = fast.components(weights)
            legacy_parts = legacy.components(weights)
            np.testing.assert_allclose(
                fast_parts.eigenvalues, legacy_parts.eigenvalues, atol=1e-8
            )
            assert fast_parts.value == pytest.approx(
                legacy_parts.value, abs=1e-8
            )

    def test_warm_started_lanczos_matches_dense(self):
        """Iterative + warm-start accuracy on a sequence of nearby points."""
        laplacians = random_laplacians(80, 3, seed=21)
        fast = SpectralObjective(
            laplacians, k=3, eigen_method="lanczos", fast_path=True
        )
        for step in np.linspace(0.0, 1.0, 8):
            weights = np.array([0.2 + 0.6 * step, 0.5 - 0.3 * step, 0.0])
            weights = np.append(weights[:2], 1.0 - weights[:2].sum())
            dense_values = bottom_eigenvalues(
                aggregate_laplacians(laplacians, weights), 4, method="dense"
            )
            fast_values = fast.components(weights).eigenvalues
            np.testing.assert_allclose(fast_values, dense_values, atol=1e-8)

    def test_disconnected_view_parity(self):
        """Zero eigenvalue multiplicities survive the fast path."""
        laplacians = random_laplacians(50, 3, seed=31, disconnect_view=0)
        fast = SpectralObjective(
            laplacians, k=2, eigen_method="lanczos", fast_path=True
        )
        # All weight on the disconnected view: lambda_2 must vanish.
        parts = fast.components([1.0, 0.0, 0.0])
        dense_values = bottom_eigenvalues(
            laplacians[0], 3, method="dense"
        )
        np.testing.assert_allclose(parts.eigenvalues, dense_values, atol=1e-8)
        assert parts.connectivity == pytest.approx(0.0, abs=1e-8)

    def test_matrix_free_operator_parity(self):
        laplacians = random_laplacians(70, 4, seed=41)
        fast = SpectralObjective(
            laplacians,
            k=2,
            eigen_method="lanczos",
            fast_path=True,
            matrix_free=True,
        )
        weights = np.array([0.4, 0.3, 0.2, 0.1])
        dense_values = bottom_eigenvalues(
            aggregate_laplacians(laplacians, weights), 3, method="dense"
        )
        np.testing.assert_allclose(
            fast.components(weights).eigenvalues, dense_values, atol=1e-8
        )

    def test_linear_operator_input_to_eigen(self):
        laplacian = random_laplacians(45, 1, seed=51)[0]
        operator = spla.aslinearoperator(laplacian)
        dense = bottom_eigenvalues(laplacian, 4, method="dense")
        values, vectors = bottom_eigenpairs(operator, 4, method="lanczos")
        np.testing.assert_allclose(values, dense, atol=1e-8)
        assert vectors.shape == (45, 4)
        values_only = bottom_eigenvalues(operator, 4, method="lanczos")
        np.testing.assert_allclose(values_only, dense, atol=1e-8)


class TestEigenvaluesOnlyPath:
    def test_matches_eigenpairs_lanczos(self):
        laplacian = random_laplacians(90, 1, seed=61)[0]
        values_only = bottom_eigenvalues(laplacian, 5, method="lanczos", seed=3)
        values, _ = bottom_eigenpairs(laplacian, 5, method="lanczos", seed=3)
        np.testing.assert_allclose(values_only, values, atol=1e-8)

    def test_matches_dense(self):
        laplacian = random_laplacians(90, 1, seed=62)[0]
        dense = bottom_eigenvalues(laplacian, 5, method="dense")
        lanczos = bottom_eigenvalues(laplacian, 5, method="lanczos", seed=0)
        np.testing.assert_allclose(lanczos, dense, atol=1e-8)


class TestLegacyAggregatePreallocation:
    def test_single_pass_sum_parity(self):
        rng = np.random.default_rng(71)
        laplacians = random_laplacians(40, 5, seed=70)
        for zero_out in (0, 2, 4):
            weights = random_simplex_weights(5, rng, zero_out=zero_out)
            result = aggregate_laplacians(laplacians, weights)
            expected = sum(
                w * to_dense(lap) for w, lap in zip(weights, laplacians)
            )
            np.testing.assert_allclose(to_dense(result), expected, atol=1e-12)
            assert result.has_sorted_indices

    def test_one_nonzero_weight_is_a_scaled_copy(self):
        laplacians = random_laplacians(20, 3, seed=72)
        result = aggregate_laplacians(laplacians, [0.0, 1.0, 0.0])
        np.testing.assert_allclose(
            to_dense(result), to_dense(laplacians[1]), atol=1e-15
        )
        result.data[:] = 0.0  # must not alias the input view
        assert to_dense(laplacians[1]).max() > 0


class TestBatchedSurface:
    def test_surface_matches_pointwise_and_reports_counts(self):
        laplacians = random_laplacians(30, 2, seed=81)
        fast = SpectralObjective(laplacians, k=2, fast_path=True)
        legacy = SpectralObjective(laplacians, k=2, fast_path=False)
        surface = objective_surface(fast, resolution=0.2)
        reference = objective_surface(legacy, resolution=0.2)
        np.testing.assert_allclose(
            surface["values"], reference["values"], atol=1e-8
        )
        assert surface["n_eigensolves"] + surface["n_eigensolves_saved"] == len(
            surface["points"]
        )
        assert surface["n_eigensolves"] >= 1

    def test_cached_points_are_free(self):
        laplacians = random_laplacians(30, 2, seed=82)
        objective = SpectralObjective(laplacians, k=2, fast_path=True)
        first = objective_surface(objective, resolution=0.25)
        again = objective_surface(objective, resolution=0.25)
        assert first["n_eigensolves"] >= 1
        assert again["n_eigensolves"] == 0
        assert again["n_eigensolves_saved"] == len(again["points"])

    def test_evaluate_batch_deduplicates(self):
        laplacians = random_laplacians(30, 2, seed=83)
        objective = SpectralObjective(laplacians, k=2, fast_path=True)
        point = np.array([0.5, 0.5])
        components, n_solves = objective.evaluate_batch([point, point, point])
        assert n_solves == 1
        assert components[0] is components[1] is components[2]

    def test_three_view_surface_variants(self):
        laplacians = random_laplacians(24, 3, seed=84)
        fast = SpectralObjective(laplacians, k=2, fast_path=True)
        legacy = SpectralObjective(laplacians, k=2, fast_path=False)
        for variant in ("full", "eigengap", "connectivity"):
            surface = objective_surface(fast, resolution=0.5, variant=variant)
            reference = objective_surface(
                legacy, resolution=0.5, variant=variant
            )
            np.testing.assert_allclose(
                surface["values"], reference["values"], atol=1e-8
            )


class TestEndToEndParity:
    @pytest.fixture(scope="class")
    def mvag(self):
        return generate_mvag(
            n_nodes=120,
            n_clusters=3,
            graph_view_strengths=[0.85, 0.2],
            attribute_view_dims=[12],
            seed=91,
        )

    def test_sgla_fast_vs_legacy(self, mvag):
        fast = SGLA(SGLAConfig(fast_path=True)).fit(mvag)
        legacy = SGLA(SGLAConfig(fast_path=False)).fit(mvag)
        np.testing.assert_allclose(fast.weights, legacy.weights, atol=1e-8)
        assert fast.objective_value == pytest.approx(
            legacy.objective_value, abs=1e-8
        )
        np.testing.assert_allclose(
            to_dense(fast.laplacian), to_dense(legacy.laplacian), atol=1e-10
        )

    def test_sgla_plus_fast_vs_legacy(self, mvag):
        fast = SGLAPlus(SGLAConfig(fast_path=True)).fit(mvag)
        legacy = SGLAPlus(SGLAConfig(fast_path=False)).fit(mvag)
        np.testing.assert_allclose(fast.weights, legacy.weights, atol=1e-8)
        assert fast.objective_value == pytest.approx(
            legacy.objective_value, abs=1e-8
        )


class TestWarmStartDeterminism:
    def test_objective_sequence_reproducible(self):
        """Warm-started evaluation sequences are bitwise reproducible."""
        laplacians = random_laplacians(100, 3, seed=95)
        runs = []
        for _ in range(2):
            objective = SpectralObjective(
                laplacians,
                k=3,
                eigen_method="lanczos",
                seed=7,
                fast_path=True,
                warm_start=True,
            )
            rng = np.random.default_rng(17)
            values = [
                objective(random_simplex_weights(3, rng)) for _ in range(6)
            ]
            runs.append(values)
        np.testing.assert_array_equal(runs[0], runs[1])

    def test_sgla_run_reproducible(self):
        mvag = generate_mvag(
            n_nodes=700,  # above DENSE_CUTOFF: iterative + warm starts
            n_clusters=3,
            graph_view_strengths=[0.8, 0.2],
            seed=96,
        )
        laplacians = build_view_laplacians(mvag)
        first = SGLA(SGLAConfig(seed=5)).fit(laplacians, k=3)
        second = SGLA(SGLAConfig(seed=5)).fit(laplacians, k=3)
        np.testing.assert_array_equal(first.weights, second.weights)
        assert first.objective_value == second.objective_value
