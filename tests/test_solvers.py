"""Tests for the pluggable spectral-solver subsystem (repro.solvers)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.laplacian import (
    aggregate_laplacians,
    build_view_laplacians,
    normalized_laplacian,
)
from repro.core.objective import SpectralObjective
from repro.datasets.generator import generate_mvag
from repro.datasets.running_example import running_example_mvag
from repro.solvers import (
    BatchedBackend,
    EigenBackend,
    EigenProblem,
    EigenResult,
    SolverContext,
    available_backends,
    bottom_eigenpairs,
    bottom_eigenvalues,
    get_backend,
    register_backend,
    resolve_method,
    unregister_backend,
)
from repro.utils.errors import ValidationError

ALL_BACKENDS = (
    "dense", "lanczos", "lobpcg", "shift-invert", "chebyshev", "batch"
)


def running_example_laplacian(weights=(0.6, 0.4)):
    """The paper's Fig. 2 aggregated Laplacian at the reported weights."""
    mvag = running_example_mvag()
    laplacians = [normalized_laplacian(a) for a in mvag.graph_views]
    return aggregate_laplacians(laplacians, np.asarray(weights))


def generated_laplacian(n=500, seed=3, weights=(0.5, 0.3, 0.2)):
    mvag = generate_mvag(
        n_nodes=n,
        n_clusters=3,
        graph_view_strengths=[0.8, 0.3],
        attribute_view_dims=[16],
        seed=seed,
    )
    laplacians = build_view_laplacians(mvag, knn_k=5)
    return aggregate_laplacians(laplacians, np.asarray(weights)), laplacians


class TestCrossBackendParity:
    @pytest.mark.parametrize("backend", ALL_BACKENDS)
    def test_running_example_eigenpairs(self, backend):
        """Every backend reproduces the dense ground truth to 1e-8 on the
        paper's running example."""
        laplacian = running_example_laplacian()
        reference, ref_vectors = bottom_eigenpairs(laplacian, 3, method="dense")
        values, vectors = bottom_eigenpairs(laplacian, 3, method=backend, seed=0)
        np.testing.assert_allclose(values, reference, atol=1e-8)
        # Eigenvectors may differ by sign/rotation; compare the spectral
        # projectors instead of raw columns.
        projector = vectors @ vectors.T
        ref_projector = ref_vectors @ ref_vectors.T
        np.testing.assert_allclose(projector, ref_projector, atol=1e-6)

    @pytest.mark.parametrize(
        "backend", ("lanczos", "lobpcg", "shift-invert", "chebyshev")
    )
    def test_larger_graph_eigenvalues(self, backend):
        laplacian, _ = generated_laplacian()
        reference = bottom_eigenvalues(laplacian, 4, method="dense")
        values = bottom_eigenvalues(laplacian, 4, method=backend, seed=0)
        np.testing.assert_allclose(values, reference, atol=1e-8)

    def test_values_only_matches_pairs(self):
        laplacian, _ = generated_laplacian()
        values_only = bottom_eigenvalues(laplacian, 4, method="lanczos", seed=0)
        values, _ = bottom_eigenpairs(laplacian, 4, method="lanczos", seed=0)
        np.testing.assert_allclose(values_only, values, atol=1e-10)


class TestRegistry:
    def test_builtins_registered(self):
        assert set(ALL_BACKENDS) <= set(available_backends())

    def test_unknown_key_lists_alternatives(self):
        with pytest.raises(ValidationError) as excinfo:
            get_backend("warp-drive")
        message = str(excinfo.value)
        assert "warp-drive" in message
        assert "lanczos" in message  # the error names what IS available

    def test_register_and_dispatch_custom_backend(self):
        class EchoDense(EigenBackend):
            name = "echo-dense"

            def solve(self, problem: EigenProblem) -> EigenResult:
                return get_backend("dense").solve(problem)

        try:
            register_backend(EchoDense())
            laplacian = running_example_laplacian()
            reference = bottom_eigenvalues(laplacian, 3, method="dense")
            values = bottom_eigenvalues(laplacian, 3, method="echo-dense")
            np.testing.assert_allclose(values, reference, atol=1e-12)
        finally:
            unregister_backend("echo-dense")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValidationError):
            register_backend(get_backend("dense"))
        # ... but allowed with an explicit overwrite.
        register_backend(get_backend("dense"), overwrite=True)

    def test_nameless_backend_rejected(self):
        class Nameless(EigenBackend):
            name = ""

        with pytest.raises(ValidationError):
            register_backend(Nameless())


class TestDispatchPolicy:
    def test_auto_small_is_dense(self):
        assert resolve_method(100, 3, "auto") == "dense"

    def test_auto_large_is_lanczos(self):
        assert resolve_method(5000, 3, "auto") == "lanczos"

    def test_auto_operator_is_lanczos(self):
        assert resolve_method(100, 3, "auto", is_operator=True) == "lanczos"

    def test_near_full_spectrum_falls_back_dense(self):
        assert resolve_method(6, 5, "lanczos") == "dense"

    def test_lobpcg_small_block_ratio_falls_back_dense(self):
        """Blocks in scipy's t >= n/5 territory go dense instead of
        tripping lobpcg's small-problem fragility."""
        assert resolve_method(24, 5, "lobpcg") == "dense"
        assert resolve_method(1000, 4, "lobpcg") == "lobpcg"

    def test_shift_invert_operator_reroutes(self):
        assert resolve_method(5000, 4, "shift-invert", is_operator=True) == "lanczos"

    def test_lobpcg_small_n_end_to_end(self):
        """The old per-caller guard is now the registry's job: a tiny
        lobpcg request runs (via dense) and is still correct."""
        laplacian = running_example_laplacian()
        reference = bottom_eigenvalues(laplacian, 3, method="dense")
        values = bottom_eigenvalues(laplacian, 3, method="lobpcg", seed=0)
        np.testing.assert_allclose(values, reference, atol=1e-10)


class TestBatchBackend:
    def _matrices(self, count=4):
        _, laplacians = generated_laplacian()
        rng = np.random.default_rng(0)
        base = np.array([0.5, 0.3, 0.2])
        matrices = []
        for _ in range(count):
            delta = rng.normal(scale=0.02, size=3)
            weights = np.clip(base + delta, 0.05, None)
            weights /= weights.sum()
            matrices.append(aggregate_laplacians(laplacians, weights))
        return matrices

    def _problems(self, matrices, t=4):
        return [EigenProblem(m, t, seed=0) for m in matrices]

    def test_threaded_matches_sequential_exactly(self):
        """Thread scheduling never changes results: the threaded batch is
        bitwise identical to the max_workers=1 batch."""
        matrices = self._matrices()
        backend = BatchedBackend()
        threaded = backend.solve_many(self._problems(matrices), max_workers=4)
        sequential = backend.solve_many(self._problems(matrices), max_workers=1)
        for a, b in zip(threaded, sequential):
            np.testing.assert_array_equal(a.values, b.values)
            np.testing.assert_array_equal(a.vectors, b.vectors)

    def test_batch_rerun_deterministic(self):
        matrices = self._matrices()
        backend = BatchedBackend()
        first = backend.solve_many(self._problems(matrices))
        second = backend.solve_many(self._problems(matrices))
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a.values, b.values)

    def test_batch_matches_per_problem_solves(self):
        """Batch results agree with independent sequential solves to well
        inside solver tolerance."""
        matrices = self._matrices()
        backend = BatchedBackend()
        batched = backend.solve_many(self._problems(matrices))
        for matrix, result in zip(matrices, batched):
            values, _ = bottom_eigenpairs(matrix, 4, method="lanczos", seed=0)
            np.testing.assert_allclose(result.values, values, atol=1e-8)

    def test_seeding_reduces_follower_matvecs(self):
        """Followers start from the seed problem's Ritz block and converge
        in fewer operator applications than a cold solve."""
        matrices = self._matrices()
        backend = BatchedBackend()
        results = backend.solve_many(self._problems(matrices))
        cold = [
            get_backend("lanczos").solve(problem)
            for problem in self._problems(matrices)
        ]
        batched_followers = sum(r.matvecs for r in results[1:])
        cold_followers = sum(r.matvecs for r in cold[1:])
        assert batched_followers < cold_followers

    def test_single_problem_delegates_to_inner(self):
        matrices = self._matrices(count=1)
        result = BatchedBackend().solve(self._problems(matrices)[0])
        assert result.backend == "lanczos"

    def test_empty_batch(self):
        assert BatchedBackend().solve_many([]) == []

    def test_context_solve_many_routes_to_batch(self):
        matrices = self._matrices()
        context = SolverContext(method="batch", seed=0)
        solved = context.solve_many(matrices, 4)
        assert len(solved) == len(matrices)
        assert context.stats.batched_solves == len(matrices)
        # Stats attribute the solves to the batch path, not just the
        # inner backend, so --eigen-backend batch is visible in summaries.
        assert context.stats.by_backend.get("batch[lanczos]") == len(matrices)
        for matrix, (values, _) in zip(matrices, solved):
            reference = bottom_eigenvalues(matrix, 4, method="dense")
            np.testing.assert_allclose(values, reference, atol=1e-8)

    def test_share_seed_false_disables_seeding(self):
        """warm_start=False ablations must get genuinely cold followers."""
        matrices = self._matrices()
        backend = BatchedBackend()
        seeded = backend.solve_many(self._problems(matrices))
        cold = backend.solve_many(self._problems(matrices), share_seed=False)
        per_problem = [
            get_backend("lanczos").solve(problem)
            for problem in self._problems(matrices)
        ]
        for a, b in zip(cold, per_problem):
            np.testing.assert_array_equal(a.values, b.values)
            assert a.matvecs == b.matvecs
        assert sum(r.matvecs for r in cold) > sum(r.matvecs for r in seeded)

        context = SolverContext(method="batch", seed=0, warm_start=False)
        context.solve_many(matrices, 4)
        assert context.stats.warm_solves == 0

    def test_values_only_batch_retains_seed_warm_block(self):
        matrices = self._matrices()
        context = SolverContext(method="batch", seed=0)
        solved = context.solve_many(matrices, 4, want_vectors=False)
        assert all(vectors is None for _, vectors in solved)
        assert context.warm_block(matrices[0].shape[0]) is not None


class TestSolverContext:
    def test_warm_start_decreases_iteration_counts(self):
        """Regression: the context's cached Ritz block must make the second
        solve of a nearby Laplacian cheaper than a cold solve."""
        _, laplacians = generated_laplacian(n=800)
        first = aggregate_laplacians(laplacians, np.array([0.5, 0.3, 0.2]))
        second = aggregate_laplacians(laplacians, np.array([0.49, 0.31, 0.2]))

        warm_context = SolverContext(method="lanczos", seed=0, warm_start=True)
        warm_context.eigenpairs(first, 4)
        cold_matvecs = warm_context.stats.matvecs
        warm_context.eigenpairs(second, 4)
        warm_matvecs = warm_context.stats.matvecs - cold_matvecs

        cold_context = SolverContext(method="lanczos", seed=0, warm_start=False)
        cold_context.eigenpairs(second, 4)

        assert warm_context.stats.warm_solves == 1
        assert warm_matvecs < cold_context.stats.matvecs

    def test_warm_start_preserves_accuracy(self):
        _, laplacians = generated_laplacian(n=800)
        first = aggregate_laplacians(laplacians, np.array([0.5, 0.3, 0.2]))
        second = aggregate_laplacians(laplacians, np.array([0.49, 0.31, 0.2]))
        context = SolverContext(method="lanczos", seed=0)
        context.eigenpairs(first, 4)
        values, _ = context.eigenpairs(second, 4)
        reference = bottom_eigenvalues(second, 4, method="dense")
        np.testing.assert_allclose(values, reference, atol=1e-8)

    def test_stats_accounting(self):
        laplacian = running_example_laplacian()
        context = SolverContext(seed=0)
        context.eigenpairs(laplacian, 3)
        context.eigenvalues(laplacian, 3)
        context.note_saved(2)
        assert context.stats.solves == 2
        assert context.stats.saved == 2
        assert context.stats.by_backend.get("dense") == 2
        assert "eigensolves" in context.stats.summary()

    def test_seed_block_installs_warm_start(self):
        """An externally computed block donated via seed_block drives the
        next solve warm."""
        _, laplacians = generated_laplacian(n=800)
        first = aggregate_laplacians(laplacians, np.array([0.5, 0.3, 0.2]))
        second = aggregate_laplacians(laplacians, np.array([0.49, 0.31, 0.2]))
        _, vectors = bottom_eigenpairs(first, 4, method="lanczos", seed=0)
        context = SolverContext(method="lanczos", seed=0)
        context.seed_block(vectors)
        context.eigenpairs(second, 4)
        assert context.stats.warm_solves == 1

    def test_warm_start_objective_first_solve_is_exact_cold(self):
        """WarmStartObjective's first (cacheless) evaluation must use the
        exact machine-precision path, not an iteration-capped LOBPCG run
        from a random block — and still donate its Ritz block."""
        from repro.dynamic.incremental import WarmStartObjective

        _, laplacians = generated_laplacian(n=800)
        warm = WarmStartObjective(laplacians, k=3)
        warm(np.array([0.5, 0.3, 0.2]))
        # The cold solve ran outside the context...
        assert warm.solver.stats.solves == 0
        # ...but its block seeds the context for the next evaluation.
        assert warm.solver.warm_block(800) is not None
        warm(np.array([0.49, 0.31, 0.2]))
        assert warm.n_warm_evaluations == 1

    def test_invalidate_drops_warm_blocks(self):
        _, laplacians = generated_laplacian(n=800)
        laplacian = aggregate_laplacians(laplacians, np.array([0.5, 0.3, 0.2]))
        context = SolverContext(method="lanczos", seed=0)
        context.eigenpairs(laplacian, 4)
        assert context.warm_block(laplacian.shape[0]) is not None
        context.invalidate()
        assert context.warm_block(laplacian.shape[0]) is None

    def test_dense_cutoff_override(self):
        context = SolverContext(method="auto", dense_cutoff=10)
        assert context.resolve(50, 3) == "lanczos"
        default = SolverContext(method="auto")
        assert default.resolve(50, 3) == "dense"

    def test_objective_reports_saved_solves(self):
        """SpectralObjective's memo cache shows up in the context stats."""
        mvag = running_example_mvag()
        laplacians = [normalized_laplacian(a) for a in mvag.graph_views]
        context = SolverContext(seed=0)
        objective = SpectralObjective(laplacians, k=2, solver=context)
        weights = np.array([0.6, 0.4])
        objective(weights)
        objective(weights)  # cache hit, no second eigensolve
        assert context.stats.solves == 1
        assert context.stats.saved == 1

    def test_objective_batch_backend_end_to_end(self):
        """The objective's batched evaluation path works on the batch
        backend and matches the dense reference."""
        _, laplacians = generated_laplacian(n=700)
        batch_objective = SpectralObjective(
            laplacians, k=3, solver=SolverContext(method="batch", seed=0)
        )
        dense_objective = SpectralObjective(
            laplacians, k=3, eigen_method="dense", seed=0
        )
        points = [
            np.array([0.5, 0.3, 0.2]),
            np.array([0.45, 0.35, 0.2]),
            np.array([0.55, 0.25, 0.2]),
        ]
        batch_components, n_solves = batch_objective.evaluate_batch(points)
        assert n_solves == len(points)
        for point, component in zip(points, batch_components):
            assert component.value == pytest.approx(
                dense_objective(point), abs=1e-8
            )


class TestShimCompatibility:
    def test_core_eigen_reexports(self):
        from repro.core import eigen

        laplacian = running_example_laplacian()
        values, vectors = eigen.bottom_eigenpairs(laplacian, 3)
        assert values.shape == (3,) and vectors.shape == (8, 3)
        assert eigen.fiedler_value(laplacian) > 0
        assert eigen.resolve_method(100, 3, "auto") == "dense"
        assert eigen.DENSE_CUTOFF == 600

    def test_operator_input_still_supported(self):
        laplacian, _ = generated_laplacian()
        operator = sp.linalg.aslinearoperator(laplacian)
        values = bottom_eigenvalues(operator, 4, method="lanczos", seed=0)
        reference = bottom_eigenvalues(laplacian, 4, method="dense")
        np.testing.assert_allclose(values, reference, atol=1e-8)
