"""Tests for the SGLA solver (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.laplacian import build_view_laplacians
from repro.core.sgla import SGLA, SGLAConfig
from repro.utils.errors import ValidationError


class TestConfig:
    def test_paper_defaults(self):
        config = SGLAConfig()
        assert config.gamma == 0.5
        assert config.eps == 1e-3
        assert config.t_max == 50
        assert config.alpha_r == 0.05
        assert config.knn_k == 10

    def test_invalid_eps(self):
        with pytest.raises(ValidationError):
            SGLAConfig(eps=0.0)

    def test_invalid_t_max(self):
        with pytest.raises(ValidationError):
            SGLAConfig(t_max=0)

    def test_config_xor_overrides(self):
        with pytest.raises(ValidationError):
            SGLA(SGLAConfig(), gamma=0.1)

    def test_overrides(self):
        solver = SGLA(gamma=0.2, t_max=10)
        assert solver.config.gamma == 0.2
        assert solver.config.t_max == 10


class TestFit:
    def test_returns_simplex_weights(self, easy_mvag):
        result = SGLA(t_max=20).fit(easy_mvag)
        assert result.weights.shape == (easy_mvag.n_views,)
        assert np.all(result.weights >= 0)
        assert result.weights.sum() == pytest.approx(1.0)

    def test_laplacian_shape_and_symmetry(self, easy_mvag):
        result = SGLA(t_max=15).fit(easy_mvag)
        n = easy_mvag.n_nodes
        assert result.laplacian.shape == (n, n)
        difference = result.laplacian - result.laplacian.T
        assert abs(difference).max() < 1e-10

    def test_downweights_noise_view(self, easy_mvag):
        """View 2 is near-random (strength 0.15): it must not get the
        largest weight."""
        result = SGLA(t_max=40).fit(easy_mvag)
        assert result.weights[1] < max(result.weights[0], result.weights[2])

    def test_beats_uniform_objective(self, easy_laplacians):
        from repro.core.objective import SpectralObjective

        solver = SGLA(t_max=40)
        result = solver.fit(easy_laplacians, k=3)
        objective = SpectralObjective(easy_laplacians, k=3, gamma=0.5)
        uniform = np.full(3, 1 / 3)
        assert result.objective_value <= objective(uniform) + 1e-9

    def test_deterministic(self, easy_mvag):
        first = SGLA(t_max=15, seed=5).fit(easy_mvag)
        second = SGLA(t_max=15, seed=5).fit(easy_mvag)
        np.testing.assert_allclose(first.weights, second.weights)

    def test_history_recorded(self, easy_mvag):
        result = SGLA(t_max=15).fit(easy_mvag)
        assert len(result.history) >= 1
        for weights, value in result.history:
            assert weights.shape == (easy_mvag.n_views,)
            assert np.isfinite(value)

    def test_history_contains_final_value(self, easy_mvag):
        result = SGLA(t_max=25).fit(easy_mvag)
        values = [value for _, value in result.history]
        assert min(values) == pytest.approx(result.objective_value)

    def test_evaluation_budget(self, easy_mvag):
        result = SGLA(t_max=10).fit(easy_mvag)
        assert result.n_objective_evaluations <= 10

    def test_raw_laplacians_need_k(self, easy_laplacians):
        with pytest.raises(ValidationError):
            SGLA().fit(easy_laplacians)

    def test_unlabeled_mvag_needs_k(self, easy_mvag):
        from repro.core.mvag import MVAG

        unlabeled = MVAG(
            graph_views=easy_mvag.graph_views,
            attribute_views=easy_mvag.attribute_views,
        )
        with pytest.raises(ValidationError):
            SGLA().fit(unlabeled)

    def test_explicit_k_overrides_labels(self, easy_mvag):
        result = SGLA(t_max=5).fit(easy_mvag, k=2)
        assert result.weights.shape == (easy_mvag.n_views,)

    def test_elapsed_recorded(self, easy_mvag):
        result = SGLA(t_max=5).fit(easy_mvag)
        assert result.elapsed_seconds > 0


class TestBackends:
    @pytest.mark.parametrize("backend", ["trust-linear", "nelder-mead",
                                         "scipy-cobyla"])
    def test_all_backends_run(self, easy_mvag, backend):
        result = SGLA(t_max=25, optimizer_backend=backend).fit(easy_mvag)
        assert np.isfinite(result.objective_value)

    def test_backends_reach_similar_optima(self, easy_mvag):
        ours = SGLA(t_max=50, optimizer_backend="trust-linear").fit(easy_mvag)
        scipys = SGLA(t_max=50, optimizer_backend="scipy-cobyla").fit(easy_mvag)
        assert abs(ours.objective_value - scipys.objective_value) < 0.08
