"""Tests for the multilevel SGLA ladder (``SGLAConfig.coarsen_levels``).

The contract under test: ``coarsen_levels=0`` stays bit-identical to the
flat path that predates coarsening; the flat *fallback* (hierarchy builds
zero rungs) is bit-identical too; multilevel results agree with the flat
optimum on small problems; runs are deterministic across shard-worker
counts; and the streaming guard rejects the ladder on live-rerouted
dynamic graphs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core.sgla import SGLA, SGLAConfig
from repro.core.sgla_plus import SGLAPlus
from repro.datasets.generator import generate_mvag
from repro.dynamic.lazy import LazySGLA
from repro.dynamic.stream import DynamicMVAG
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def mvag():
    return generate_mvag(
        400, 4, graph_view_strengths=(0.8, 0.3), attribute_view_dims=(16,),
        seed=7,
    )


def _multilevel_config(**overrides):
    params = {"min_nodes": 60}
    params.update(overrides.pop("coarsen_params", {}))
    base = dict(
        coarsen_levels=2, coarsen_params=params, eps=1e-4, seed=3
    )
    base.update(overrides)
    return SGLAConfig(**base)


class TestFlatConformance:
    def test_zero_levels_has_no_coarsen_stats(self, mvag):
        result = SGLA(SGLAConfig(seed=3)).fit(mvag)
        assert result.coarsen_stats is None

    def test_flat_fallback_bitwise_identical(self, mvag):
        """A hierarchy that builds zero rungs must defer to the flat path
        exactly — same weights, same Laplacian, bit for bit."""
        flat = SGLA(SGLAConfig(seed=3)).fit(mvag)
        # min_nodes above n: build_hierarchy stops before the first rung.
        fallback = SGLA(
            SGLAConfig(
                coarsen_levels=3,
                coarsen_params={"min_nodes": 10_000},
                seed=3,
            )
        ).fit(mvag)
        np.testing.assert_array_equal(flat.weights, fallback.weights)
        assert flat.objective_value == fallback.objective_value
        assert (flat.laplacian != fallback.laplacian).nnz == 0
        # ...but the fallback still reports what happened.
        assert fallback.coarsen_stats is not None
        assert fallback.coarsen_stats.levels == [mvag.n_nodes]
        assert "flat" not in fallback.coarsen_stats.summary().split("[")[0]

    def test_flat_fallback_sgla_plus(self, mvag):
        flat = SGLAPlus(SGLAConfig(seed=3)).fit(mvag)
        fallback = SGLAPlus(
            SGLAConfig(
                coarsen_levels=1,
                coarsen_params={"min_nodes": 10_000},
                seed=3,
            )
        ).fit(mvag)
        np.testing.assert_array_equal(flat.weights, fallback.weights)
        assert flat.objective_value == fallback.objective_value


class TestMultilevelFit:
    def test_agrees_with_flat_optimum(self, mvag):
        flat = SGLA(SGLAConfig(eps=1e-4, seed=3)).fit(mvag)
        multi = SGLA(_multilevel_config()).fit(mvag)
        # The refine stage polishes the coarse bias away: the multilevel
        # optimum must match the flat one to first order.
        assert np.abs(multi.weights - flat.weights).max() < 1e-2
        assert multi.objective_value <= flat.objective_value + 1e-3

    def test_stats_populated(self, mvag):
        result = SGLA(_multilevel_config()).fit(mvag)
        stats = result.coarsen_stats
        assert stats is not None
        assert stats.backend == "heavy-edge"
        assert len(stats.levels) >= 2
        assert stats.levels[0] == mvag.n_nodes
        assert stats.levels[-1] < mvag.n_nodes
        assert stats.coarse_solves > 0
        assert stats.fine_solves > 0
        assert stats.refine_evaluations > 0
        assert stats.coarsen_seconds >= 0
        assert str(mvag.n_nodes) in stats.summary()
        # The fine polish must be cheaper than the flat search it replaces.
        flat = SGLA(SGLAConfig(eps=1e-4, seed=3)).fit(mvag)
        assert stats.refine_evaluations < flat.n_objective_evaluations

    def test_landmark_backend(self, mvag):
        result = SGLA(
            _multilevel_config(coarsen_backend="landmark")
        ).fit(mvag)
        assert result.coarsen_stats.backend == "landmark"
        assert result.coarsen_stats.levels[-1] < mvag.n_nodes
        np.testing.assert_allclose(result.weights.sum(), 1.0, atol=1e-9)

    def test_sgla_plus_path(self, mvag):
        result = SGLAPlus(_multilevel_config()).fit(mvag)
        assert result.coarsen_stats is not None
        assert result.coarsen_stats.levels[-1] < mvag.n_nodes
        np.testing.assert_allclose(result.weights.sum(), 1.0, atol=1e-9)
        # SGLA+ flat is a one-shot surrogate minimizer; the multilevel
        # gradient polish must end at least as good an objective.
        flat = SGLAPlus(SGLAConfig(eps=1e-4, seed=3)).fit(mvag)
        assert result.objective_value <= flat.objective_value + 1e-9

    def test_deterministic_for_fixed_seed(self, mvag):
        first = SGLA(_multilevel_config()).fit(mvag)
        second = SGLA(_multilevel_config()).fit(mvag)
        np.testing.assert_array_equal(first.weights, second.weights)
        assert first.objective_value == second.objective_value

    @pytest.mark.parametrize("workers", [0, 1, 2])
    def test_deterministic_across_shard_workers(self, mvag, workers):
        """ISSUE acceptance: multilevel results are identical whatever the
        shard-worker count (0 = classic, 1 = serial plan, 2 = pool)."""
        reference = SGLA(_multilevel_config()).fit(mvag)
        sharded = SGLA(
            _multilevel_config(shard_workers=workers)
        ).fit(mvag)
        np.testing.assert_array_equal(reference.weights, sharded.weights)
        assert reference.objective_value == sharded.objective_value


class TestConfigValidation:
    def test_negative_levels_rejected(self):
        with pytest.raises(ValidationError):
            SGLAConfig(coarsen_levels=-1)

    def test_empty_backend_rejected(self):
        with pytest.raises(ValidationError):
            SGLAConfig(coarsen_backend="")

    def test_unknown_backend_fails_at_fit(self, mvag):
        config = SGLAConfig(coarsen_levels=1, coarsen_backend="nope")
        with pytest.raises(ValidationError, match="nope"):
            SGLA(config).fit(mvag)


class TestCLI:
    def test_cluster_with_coarsen_prints_stats(self, capsys):
        code = main(["cluster", "rm", "--method", "sgla", "--coarsen", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "coarsen:" in out
        assert "heavy-edge" in out

    def test_coarsen_backend_choice(self, capsys):
        code = main(
            ["cluster", "rm", "--method", "sgla", "--coarsen", "1",
             "--coarsen-backend", "landmark"]
        )
        assert code == 0
        assert "landmark" in capsys.readouterr().out


class TestDynamicGuard:
    @pytest.fixture(scope="class")
    def streamed(self):
        # rp-forest only engages above RP_FOREST_MIN_N (512) nodes;
        # smaller streams silently resolve to exact and no rerouting
        # state exists to protect.
        return generate_mvag(
            600, 4, graph_view_strengths=(0.7,), attribute_view_dims=(8,),
            seed=13,
        )

    def test_rejects_ladder_on_live_rerouted_stream(self, streamed):
        dynamic = DynamicMVAG(streamed, knn_k=5, knn_backend="rp-forest")
        assert dynamic.uses_live_forest_rerouting
        lazy = LazySGLA(k=4, config=SGLAConfig(coarsen_levels=1))
        with pytest.raises(ValidationError, match="rp-forest"):
            lazy.fit(dynamic)

    def test_refresh_also_guarded(self, streamed):
        exact = DynamicMVAG(streamed, knn_k=5, knn_backend="exact")
        assert not exact.uses_live_forest_rerouting
        lazy = LazySGLA(k=4, config=SGLAConfig(coarsen_levels=1))
        lazy.fit(exact)  # exact backend: allowed
        rerouted = DynamicMVAG(streamed, knn_k=5, knn_backend="rp-forest")
        with pytest.raises(ValidationError, match="rp-forest"):
            lazy.refresh(rerouted)

    def test_flat_config_streams_freely(self, streamed):
        dynamic = DynamicMVAG(streamed, knn_k=5, knn_backend="rp-forest")
        lazy = LazySGLA(k=4, config=SGLAConfig())  # coarsen_levels=0
        lazy.fit(dynamic)
        report = lazy.refresh(dynamic)
        assert report.weights.shape == (2,)
