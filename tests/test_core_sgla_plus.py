"""Tests for the SGLA+ solver (Algorithm 2)."""

import numpy as np
import pytest

from repro.core.mvag import MVAG
from repro.core.sgla import SGLA
from repro.core.sgla_plus import SGLAPlus
from repro.utils.errors import ValidationError


class TestFit:
    def test_evaluation_budget_is_order_r(self, easy_mvag):
        """The headline efficiency claim: r+1 expensive evaluations for the
        surrogate fit plus at most two safeguard candidates."""
        result = SGLAPlus().fit(easy_mvag)
        r = easy_mvag.n_views
        assert result.n_objective_evaluations <= r + 7

    def test_fewer_evaluations_than_sgla(self, easy_mvag):
        plus = SGLAPlus().fit(easy_mvag)
        base = SGLA(t_max=50).fit(easy_mvag)
        assert plus.n_objective_evaluations < base.n_objective_evaluations

    def test_objective_close_to_sgla(self, easy_mvag):
        """w-dagger approximates w*: the objective gap must be small."""
        plus = SGLAPlus().fit(easy_mvag)
        base = SGLA(t_max=50).fit(easy_mvag)
        assert plus.objective_value <= base.objective_value + 0.1

    def test_weights_on_simplex(self, easy_mvag):
        result = SGLAPlus().fit(easy_mvag)
        assert np.all(result.weights >= -1e-12)
        assert result.weights.sum() == pytest.approx(1.0)

    def test_downweights_noise_view(self, easy_mvag):
        result = SGLAPlus().fit(easy_mvag)
        assert result.weights[1] < max(result.weights[0], result.weights[2])

    def test_deterministic(self, easy_mvag):
        a = SGLAPlus(seed=3).fit(easy_mvag)
        b = SGLAPlus(seed=3).fit(easy_mvag)
        np.testing.assert_allclose(a.weights, b.weights)

    def test_history_has_samples_plus_candidates(self, easy_mvag):
        result = SGLAPlus().fit(easy_mvag)
        r = easy_mvag.n_views
        assert r + 2 <= len(result.history) <= r + 7

    def test_delta_samples_positive(self, easy_mvag):
        result = SGLAPlus().fit(easy_mvag, delta_samples=3)
        assert result.n_objective_evaluations <= easy_mvag.n_views + 1 + 3 + 2

    def test_delta_samples_negative(self, easy_mvag):
        result = SGLAPlus().fit(easy_mvag, delta_samples=-1)
        assert np.isfinite(result.objective_value)

    def test_single_view(self):
        rng = np.random.default_rng(0)
        mvag = MVAG(
            graph_views=[(rng.random((20, 20)) < 0.3).astype(float)],
            labels=rng.integers(0, 2, 20),
        )
        result = SGLAPlus().fit(mvag)
        np.testing.assert_allclose(result.weights, [1.0])

    def test_two_views(self, running_example):
        result = SGLAPlus().fit(running_example)
        assert result.weights.shape == (2,)
        assert result.weights.sum() == pytest.approx(1.0)

    def test_config_xor_overrides(self):
        from repro.core.sgla import SGLAConfig

        with pytest.raises(ValidationError):
            SGLAPlus(SGLAConfig(), gamma=0.1)

    def test_faster_than_sgla(self, hetero_mvag):
        plus = SGLAPlus().fit(hetero_mvag)
        base = SGLA(t_max=50).fit(hetero_mvag)
        # Wall-clock comparisons are noisy; require only a clear advantage.
        assert plus.elapsed_seconds < base.elapsed_seconds * 1.5
