"""Property-based tests linking the objective to spectral graph theory.

These verify the theoretical relationships the paper's Section IV builds
on, over randomly generated multi-view instances.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.eigen import bottom_eigenvalues, fiedler_value
from repro.core.laplacian import aggregate_laplacians, normalized_laplacian
from repro.core.objective import SpectralObjective
from repro.datasets.generator import planted_partition_graph


def random_views(n, r, seed):
    rng = np.random.default_rng(seed)
    labels = np.repeat([0, 1], n // 2)
    views = []
    for i in range(r):
        strength = float(rng.uniform(0.2, 0.9))
        adjacency = planted_partition_graph(
            labels, strength, avg_degree=8.0, rng=int(rng.integers(1 << 30))
        )
        views.append(normalized_laplacian(adjacency))
    return views, labels


class TestSpectralTheoryLinks:
    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_eigengap_bounded_by_one(self, seed):
        """lambda_k <= lambda_{k+1} implies g_k in [0, 1]."""
        views, _ = random_views(40, 3, seed)
        objective = SpectralObjective(views, k=2, gamma=0.0)
        rng = np.random.default_rng(seed)
        weights = rng.dirichlet(np.ones(3))
        parts = objective.components(weights)
        assert 0.0 <= parts.eigengap <= 1.0 + 1e-9

    @given(st.integers(0, 10_000))
    @settings(max_examples=15, deadline=None)
    def test_connectivity_matches_fiedler(self, seed):
        views, _ = random_views(40, 2, seed)
        objective = SpectralObjective(views, k=2, gamma=0.0)
        rng = np.random.default_rng(seed)
        weights = rng.dirichlet(np.ones(2))
        parts = objective.components(weights)
        laplacian = aggregate_laplacians(views, weights)
        assert parts.connectivity == pytest.approx(
            fiedler_value(laplacian), abs=1e-6
        )

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_gamma_monotone_in_objective(self, seed):
        """For fixed weights, h is affine-increasing in gamma with slope
        ||w||^2 — the regularizer never interacts with the spectrum."""
        views, _ = random_views(30, 3, seed)
        rng = np.random.default_rng(seed)
        weights = rng.dirichlet(np.ones(3))
        low = SpectralObjective(views, k=2, gamma=0.0)(weights)
        high = SpectralObjective(views, k=2, gamma=1.0)(weights)
        assert high - low == pytest.approx(float(weights @ weights), abs=1e-9)

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_aggregated_eigenvalues_within_convex_hull_bounds(self, seed):
        """Weyl: lambda_min(sum) >= sum of lambda_mins (= 0 here) and
        lambda_max(sum) <= max over views of lambda_max <= 2."""
        views, _ = random_views(30, 3, seed)
        rng = np.random.default_rng(seed)
        weights = rng.dirichlet(np.ones(3))
        laplacian = aggregate_laplacians(views, weights)
        values = np.linalg.eigvalsh(laplacian.toarray())
        assert values.min() >= -1e-9
        assert values.max() <= 2.0 + 1e-9


class TestPerfectClusterLimit:
    def test_disjoint_cliques_reach_zero_eigengap(self):
        """The idealized case of Corollary 1.1: k components give
        lambda_k = 0, hence g_k = 0, for every weighting."""
        block = np.ones((8, 8)) - np.eye(8)
        adjacency = sp.block_diag([block, block]).tocsr()
        laplacian = normalized_laplacian(adjacency)
        objective = SpectralObjective([laplacian, laplacian], k=2, gamma=0.0)
        for w1 in (0.1, 0.5, 0.9):
            parts = objective.components([w1, 1 - w1])
            assert parts.eigengap == pytest.approx(0.0, abs=1e-9)

    def test_perturbation_keeps_eigengap_small(self):
        """Matrix-perturbation intuition (paper Sec. IV-A): adding a few
        cross edges to a perfectly clustered graph moves lambda_k only
        slightly, so g_k stays small."""
        block = np.ones((10, 10)) - np.eye(10)
        dense = np.zeros((20, 20))
        dense[:10, :10] = block
        dense[10:, 10:] = block
        dense[0, 10] = dense[10, 0] = 1.0  # one cross edge
        laplacian = normalized_laplacian(sp.csr_matrix(dense))
        values = bottom_eigenvalues(laplacian, 3, method="dense")
        assert values[1] / values[2] < 0.2
