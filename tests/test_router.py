"""Integration tests of the routing front tier (DESIGN.md §14).

Live in-process daemons behind a :class:`~repro.serve.router.Router`:
cache-affine placement, health-checked failover with bit-identical
results, circuit-breaker transitions, hedged requests with loser
cancellation, error-class propagation (quota / validation pass through,
infrastructure fails over), the ``NoHealthyReplica`` loud-failure
contract, and the :class:`RouterDaemon` TCP front speaking the
unmodified client protocol.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.serve import (
    NoHealthyReplica,
    RouteStats,
    Router,
    RouterConfig,
    RouterDaemon,
    ServeClient,
    ServeConfig,
    ServeDaemon,
    ServerDraining,
)
from repro.serve.ring import HashRing, route_key
from repro.serve.router import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    _AttemptFailed,
)
from repro.utils.errors import ValidationError

PROFILE = "rm_small"
R = 11

JOB = {
    "kind": "objective", "profile": PROFILE, "k": 2,
    "weights": np.full(R, 1.0 / R),
}


def make_job():
    return {**JOB, "weights": JOB["weights"].copy()}


def wait_for(predicate, timeout=10.0, interval=0.01) -> bool:
    limit = time.monotonic() + timeout
    while time.monotonic() < limit:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@pytest.fixture()
def fleet():
    # Result caching off: these tests exercise routing mechanics by
    # re-submitting the identical job (hedging/failover tests park the
    # workers and rely on the repeat actually executing); with the
    # cache on, the daemon would answer it from memory instantly.
    daemons = []
    for _ in range(3):
        daemon = ServeDaemon(ServeConfig(
            bind="127.0.0.1:0", workers=1, result_cache=False
        ))
        daemon.start()
        daemons.append(daemon)
    yield daemons
    for daemon in daemons:
        daemon.stop(drain=False)


def router_config(fleet, **overrides) -> RouterConfig:
    defaults = dict(
        daemons=tuple(d.address for d in fleet),
        replication=2,
        health_interval=0.2,
        breaker_failures=2,
        breaker_cooldown=0.5,
    )
    defaults.update(overrides)
    return RouterConfig(**defaults)


# ---------------------------------------------------------------------- #
# Placement + determinism
# ---------------------------------------------------------------------- #

class TestRouting:
    def test_same_key_routes_to_same_daemon(self, fleet):
        with Router(router_config(fleet)) as router:
            first = router.submit(make_job())
            for _ in range(3):
                again = router.submit(make_job())
                assert again["routed_to"] == first["routed_to"]
                assert again["result"]["value"] == first["result"]["value"]

    def test_placement_matches_ring(self, fleet):
        with Router(router_config(fleet)) as router:
            reply = router.submit(make_job())
            ring = HashRing(
                [d.address for d in fleet], vnodes=router.config.vnodes
            )
            assert reply["routed_to"] == ring.lookup(route_key(JOB))[0]

    def test_cache_locality_one_daemon_warms(self, fleet):
        with Router(router_config(fleet)) as router:
            for _ in range(3):
                router.submit(make_job())
        warmed = [d for d in fleet if d.datasets.snapshot()["entries"]]
        assert len(warmed) == 1  # replication routes reads to the primary

    def test_failover_result_bit_identical(self, fleet):
        with Router(router_config(fleet)) as router:
            first = router.submit(make_job())
            victim = next(
                d for d in fleet if d.address == first["routed_to"]
            )
            victim.stop(drain=False)
            # health marks it dead; routing then skips it outright
            assert wait_for(
                lambda: not router.health[victim.address].alive
            )
            after = router.submit(make_job())
            assert after["routed_to"] != victim.address
            assert after["result"]["value"] == first["result"]["value"]
            assert np.array_equal(
                after["result"]["eigenvalues"],
                first["result"]["eigenvalues"],
            )
            assert router.stats.snapshot()["skipped_unhealthy"] >= 1

    def test_draining_daemon_leaves_rotation(self, fleet):
        with Router(router_config(fleet)) as router:
            first = router.submit(make_job())
            primary = next(
                d for d in fleet if d.address == first["routed_to"]
            )
            primary.drain()
            assert wait_for(
                lambda: router.health[primary.address].draining
            )
            after = router.submit(make_job())
            assert after["routed_to"] != primary.address
            assert after["failovers"] == 0  # skipped, not failed over

    def test_validation_error_propagates_without_failover(self, fleet):
        with Router(router_config(fleet)) as router:
            with pytest.raises(ValidationError):
                router.submit({
                    "kind": "objective", "profile": PROFILE, "k": 2,
                    "weights": np.full(R, 1.0 / R),
                    "config": {"bogus_knob": 1},
                })
            assert router.stats.snapshot()["failovers"] == 0

    def test_router_drain_refuses_submits(self, fleet):
        with Router(router_config(fleet)) as router:
            router.drain()
            with pytest.raises(ServerDraining):
                router.submit(make_job())

    def test_no_healthy_replica_is_loud(self, fleet):
        # health checks effectively off: dispatch discovers the deaths
        with Router(router_config(fleet, health_interval=30.0)) as router:
            for daemon in fleet:
                daemon.stop(drain=False)
            with pytest.raises(NoHealthyReplica) as excinfo:
                router.submit(make_job())
            # attributable: the error names every replica and its fate
            assert "unreachable" in str(excinfo.value)
            # discovery marked them dead: the retry skips them outright
            with pytest.raises(NoHealthyReplica) as excinfo:
                router.submit(make_job())
            assert "dead" in str(excinfo.value)
            assert router.stats.snapshot()["no_replica"] == 2


# ---------------------------------------------------------------------- #
# Hedging
# ---------------------------------------------------------------------- #

class TestHedging:
    def test_hedge_wins_and_loser_is_cancelled(self, fleet):
        addrs = [d.address for d in fleet]
        ring = HashRing(addrs)
        primary_addr, secondary_addr = ring.lookup(route_key(JOB), 2)
        primary = fleet[addrs.index(primary_addr)]
        config = router_config(
            fleet, hedge_delay=0.25, health_interval=30.0
        )
        with Router(config) as router:
            warm = router.submit(make_job())  # both caches stay cold-safe
            assert warm["routed_to"] == primary_addr
            assert primary.hold_workers()
            reply = router.submit(make_job())
            assert reply["hedged"] is True
            assert reply["routed_to"] == secondary_addr
            assert reply["result"]["value"] == warm["result"]["value"]
            snap = router.stats.snapshot()
            assert snap["hedges_launched"] == 1
            assert snap["hedges_won"] == 1
            assert snap["hedges_cancelled"] == 1
            # self-inflicted cancellation must not mark the primary dead
            assert router.health[primary_addr].alive is True
            # the daemon reclaims the abandoned queued entry
            assert wait_for(
                lambda: primary.stats.total("cancelled") >= 1
            )
            primary.worker_gate.set()

    def test_no_hedge_under_trigger(self, fleet):
        config = router_config(fleet, hedge_delay=30.0)
        with Router(config) as router:
            reply = router.submit(make_job())
            assert reply["hedged"] is False
            assert router.stats.snapshot()["hedges_launched"] == 0

    def test_hedge_launch_claims_breaker_probe(self, fleet):
        # A hedge onto a recovering daemon (OPEN past cooldown) must go
        # through allow() — claiming the single HALF_OPEN probe slot —
        # and its win must be recorded as the partner's recovery.
        addrs = [d.address for d in fleet]
        ring = HashRing(addrs)
        primary_addr, secondary_addr = ring.lookup(route_key(JOB), 2)
        primary = fleet[addrs.index(primary_addr)]
        config = router_config(
            fleet, hedge_delay=0.25, health_interval=30.0
        )
        with Router(config) as router:
            warm = router.submit(make_job())
            assert warm["routed_to"] == primary_addr
            partner = router.breakers[secondary_addr]
            partner.record_failure()
            partner.record_failure()
            assert partner.state == OPEN
            partner._opened_at -= 10.0  # cooldown elapsed: probe-ready
            assert primary.hold_workers()
            reply = router.submit(make_job())
            assert reply["routed_to"] == secondary_addr
            assert reply["hedged"] is True
            assert partner.state == CLOSED  # probe succeeded: recovered
            snap = router.stats.snapshot()
            assert snap["breaker_probes"] == 1
            assert snap["breaker_closes"] == 1
            primary.worker_gate.set()

    def test_hedge_skipped_when_partner_probe_claimed(self, fleet):
        # The partner passes would_allow() at candidate selection, but
        # another request claims its single HALF_OPEN probe before the
        # hedge trigger fires: the launch-time allow() must deny the
        # hedge entirely, never dispatch on the stale would_allow()
        # (the thundering-herd hole).
        addrs = [d.address for d in fleet]
        ring = HashRing(addrs)
        primary_addr, secondary_addr = ring.lookup(route_key(JOB), 2)
        primary = fleet[addrs.index(primary_addr)]
        config = router_config(
            fleet, hedge_delay=0.2, health_interval=30.0
        )
        with Router(config) as router:
            warm = router.submit(make_job())
            assert warm["routed_to"] == primary_addr
            partner = router.breakers[secondary_addr]
            partner.record_failure()
            partner.record_failure()
            partner._opened_at -= 10.0
            assert partner.would_allow()  # selectable as hedge partner
            assert primary.hold_workers()
            claim = threading.Timer(0.05, partner.allow)
            release = threading.Timer(0.4, primary.worker_gate.set)
            claim.start()
            release.start()
            try:
                reply = router.submit(make_job())
            finally:
                claim.cancel()
                release.cancel()
                primary.worker_gate.set()
            assert reply["routed_to"] == primary_addr
            assert reply["hedged"] is False
            snap = router.stats.snapshot()
            assert snap["hedges_launched"] == 0
            assert snap["breaker_rejections"] >= 1
            assert partner.state == HALF_OPEN  # probe slot untouched
            assert not partner.would_allow()

    def test_cancelled_hedge_aborts_before_dispatch(self, fleet):
        # The winner can finish while the loser is still connecting: the
        # cancel sweep misses the not-yet-boxed socket, so _wire_submit
        # itself must honour the flag before sending the duplicate job.
        with Router(router_config(fleet, health_interval=30.0)) as router:
            address = fleet[0].address
            box = {"socks": [], "cancelled": True}
            with pytest.raises(_AttemptFailed) as excinfo:
                router._wire_submit(
                    address, {"op": "ping"}, expires_at=None,
                    cancel_box=box,
                )
            assert excinfo.value.infrastructure is False
            # self-inflicted: the daemon must not be marked dead
            assert router.health[address].alive is True

    def test_quantile_trigger_needs_samples(self, fleet):
        config = router_config(
            fleet, hedge_quantile=0.95, hedge_min_samples=5
        )
        with Router(config) as router:
            assert router._hedge_trigger() is None  # no samples yet
            for _ in range(5):
                router.stats.observe_latency(0.02)
            trigger = router._hedge_trigger()
            assert trigger is not None
            assert trigger >= config.hedge_floor


# ---------------------------------------------------------------------- #
# Circuit breaker
# ---------------------------------------------------------------------- #

class TestCircuitBreaker:
    def test_transitions(self):
        stats = RouteStats()
        clock = [0.0]
        breaker = CircuitBreaker(
            failures=2, cooldown=1.0, stats=stats, clock=lambda: clock[0]
        )
        assert breaker.state == CLOSED
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CLOSED  # one short of the threshold
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()  # cooldown not elapsed
        clock[0] = 1.5
        assert breaker.would_allow()
        assert breaker.allow()
        assert breaker.state == HALF_OPEN
        assert not breaker.allow()  # single probe slot
        breaker.record_success()
        assert breaker.state == CLOSED
        snap = stats.snapshot()
        assert snap["breaker_opens"] == 1
        assert snap["breaker_probes"] == 1
        assert snap["breaker_closes"] == 1
        assert snap["breaker_rejections"] == 2

    def test_half_open_failure_reopens(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failures=1, cooldown=1.0, clock=lambda: clock[0]
        )
        breaker.record_failure()
        assert breaker.state == OPEN
        clock[0] = 1.5
        assert breaker.allow()  # the half-open probe
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()  # cooldown restarted
        clock[0] = 3.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failures=2, cooldown=1.0)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # failures were not consecutive

    def test_release_probe_frees_half_open_slot(self):
        # A neutral outcome (refusal, client error, cancelled hedge)
        # must return the probe slot; otherwise the breaker wedges in
        # HALF_OPEN and the daemon is excluded from routing forever.
        clock = [0.0]
        breaker = CircuitBreaker(
            failures=1, cooldown=1.0, clock=lambda: clock[0]
        )
        breaker.record_failure()
        clock[0] = 1.5
        assert breaker.allow()  # claims the single HALF_OPEN probe
        assert not breaker.would_allow()
        breaker.release_probe()
        assert breaker.state == HALF_OPEN  # no verdict was reached
        assert breaker.would_allow()
        assert breaker.allow()  # next request can probe again
        breaker.record_success()
        assert breaker.state == CLOSED

    def test_release_probe_harmless_after_verdict(self):
        clock = [0.0]
        breaker = CircuitBreaker(
            failures=1, cooldown=1.0, clock=lambda: clock[0]
        )
        breaker.record_failure()
        clock[0] = 1.5
        assert breaker.allow()
        breaker.record_failure()  # probe verdict: still broken
        breaker.release_probe()  # e.g. a cancel sweep after the fact
        assert breaker.state == OPEN
        assert not breaker.allow()  # cooldown restarted, not bypassed

    def test_dispatch_failures_feed_the_breaker(self, fleet):
        config = router_config(
            fleet, health_interval=30.0, breaker_failures=1,
            breaker_cooldown=30.0,
        )
        with Router(config) as router:
            first = router.submit(make_job())
            victim_addr = first["routed_to"]
            victim = next(d for d in fleet if d.address == victim_addr)
            victim.stop(drain=False)
            # drop the warm pooled socket: in-process stop() leaves it
            # ESTABLISHED (a real crash would RST it), and dispatch over
            # it would block in recv.  With the pool empty, the closed
            # listener refuses new connections fast.
            router._endpoints[victim_addr].close_all()
            reply = router.submit(make_job())
            assert reply["failovers"] == 1
            assert reply["result"]["value"] == first["result"]["value"]
            assert router.breakers[victim_addr].state == OPEN
            assert router.stats.snapshot()["breaker_opens"] == 1

    def test_half_open_probe_survives_admission_refusal(self, fleet):
        # A HALF_OPEN probe answered with a draining/overloaded refusal
        # is neutral: it must release the probe slot (regression: the
        # slot leaked and the breaker wedged, permanently excluding the
        # daemon from routing).
        config = router_config(
            fleet, health_interval=30.0, breaker_failures=1
        )
        with Router(config) as router:
            first = router.submit(make_job())
            primary_addr = first["routed_to"]
            primary = next(d for d in fleet if d.address == primary_addr)
            primary.drain()  # health never probes: dispatch discovers it
            breaker = router.breakers[primary_addr]
            breaker.record_failure()
            assert breaker.state == OPEN
            breaker._opened_at -= 10.0  # cooldown elapsed: probe-ready
            reply = router.submit(make_job())
            assert reply["routed_to"] != primary_addr
            assert reply["failovers"] == 1
            assert breaker.state == HALF_OPEN  # refusal is no verdict
            assert breaker.would_allow()  # the probe slot was released

    def test_client_error_releases_half_open_probe(self, fleet):
        # Typed client errors (validation here) pass through the router
        # untouched — but a probe slot claimed for the dispatch must
        # still be returned.
        config = router_config(
            fleet, health_interval=30.0, breaker_failures=1
        )
        with Router(config) as router:
            first = router.submit(make_job())
            breaker = router.breakers[first["routed_to"]]
            breaker.record_failure()
            breaker._opened_at -= 10.0
            with pytest.raises(ValidationError):
                router.submit({
                    "kind": "objective", "profile": PROFILE, "k": 2,
                    "weights": np.full(R, 1.0 / R),
                    "config": {"bogus_knob": 1},
                })
            assert breaker.state == HALF_OPEN
            assert breaker.would_allow()

    def test_submit_timeout_does_not_mark_daemon_dead(self, monkeypatch):
        # One slow job exhausting its deadline says nothing about the
        # daemon's liveness: the breaker does the accounting, the active
        # health checker owns alive/dead (regression: a socket.timeout
        # flipped health.alive and evicted a healthy replica).
        monkeypatch.setattr("repro.serve.router.REPLY_GRACE", 0.1)
        sink = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sink.bind(("127.0.0.1", 0))
        sink.listen(1)  # accepts connects, never replies
        address = "127.0.0.1:%d" % sink.getsockname()[1]
        router = Router(RouterConfig(daemons=(address,)))
        try:
            with pytest.raises(_AttemptFailed) as excinfo:
                router._wire_submit(
                    address,
                    {"op": "submit"},
                    expires_at=time.monotonic() + 0.2,
                )
            assert excinfo.value.infrastructure is True  # breaker-worthy
            assert router.health[address].alive is True
        finally:
            router.close()
            sink.close()

    def test_open_breaker_removes_replica_from_rotation(self, fleet):
        config = router_config(
            fleet, health_interval=30.0, breaker_failures=1,
            breaker_cooldown=30.0,
        )
        with Router(config) as router:
            first = router.submit(make_job())
            primary = first["routed_to"]
            router.breakers[primary].record_failure()
            assert router.breakers[primary].state == OPEN
            reply = router.submit(make_job())
            assert reply["routed_to"] != primary
            assert reply["failovers"] == 0  # skipped without an attempt
            assert reply["result"]["value"] == first["result"]["value"]
            assert router.stats.snapshot()["skipped_unhealthy"] >= 1


# ---------------------------------------------------------------------- #
# RouteStats
# ---------------------------------------------------------------------- #

class TestRouteStats:
    def test_merge_sums_counters_and_daemons(self):
        a, b = RouteStats(), RouteStats()
        a.bump("requests", 2)
        a.bump_daemon("x:1", "routed", 2)
        b.bump("requests", 3)
        b.bump("failovers")
        b.bump_daemon("x:1", "routed")
        b.bump_daemon("y:1", "completed", 4)
        a.merge(b)
        snap = a.snapshot()
        assert snap["requests"] == 5
        assert snap["failovers"] == 1
        assert snap["daemons"]["x:1"]["routed"] == 3
        assert snap["daemons"]["y:1"]["completed"] == 4

    def test_self_merge_doubles(self):
        stats = RouteStats()
        stats.bump("requests", 2)
        stats.bump_daemon("x:1", "routed")
        stats.merge(stats)
        snap = stats.snapshot()
        assert snap["requests"] == 4
        assert snap["daemons"]["x:1"]["routed"] == 2

    def test_iadd_and_summary(self):
        a, b = RouteStats(), RouteStats()
        b.bump("requests")
        a += b
        assert "1 requests" in a.summary()

    def test_unknown_counter_rejected(self):
        with pytest.raises(KeyError):
            RouteStats().bump("nope")
        with pytest.raises(KeyError):
            RouteStats().bump_daemon("x:1", "nope")

    def test_latency_quantile(self):
        stats = RouteStats()
        for ms in range(1, 101):
            stats.observe_latency(ms / 1000.0)
        value, count = stats.latency_quantile(0.95)
        assert count == 100
        assert 0.090 <= value <= 0.100


# ---------------------------------------------------------------------- #
# RouterDaemon TCP front
# ---------------------------------------------------------------------- #

class TestRouterDaemon:
    def test_unmodified_client_speaks_to_router(self, fleet):
        with RouterDaemon(router_config(fleet)) as front:
            with ServeClient(front.address) as client:
                assert client.ping()
                reply = client.submit(make_job())
                assert reply["result"]["value"] == pytest.approx(
                    reply["result"]["value"]
                )
                assert reply["routed_to"] in [d.address for d in fleet]

    def test_health_aggregates_fleet(self, fleet):
        with RouterDaemon(router_config(fleet)) as front:
            with ServeClient(front.address) as client:
                client.submit(make_job())
                health = client.health()
                assert health["router"] is True
                assert set(health["daemons"]) == {
                    d.address for d in fleet
                }
                assert len(health["ring"]["nodes"]) == 3
                assert health["route_stats"]["requests"] >= 1
                # fleet ServeStats ride on health probes: wait one cycle
                assert wait_for(
                    lambda: client.health()["stats"]["totals"][
                        "completed"
                    ] >= 1
                )

    def test_drain_via_wire(self, fleet):
        with RouterDaemon(router_config(fleet)) as front:
            with ServeClient(front.address) as client:
                client.drain()
                with pytest.raises(ServerDraining):
                    client.submit(make_job())

    def test_concurrent_clients_route_consistently(self, fleet):
        with RouterDaemon(router_config(fleet)) as front:
            results, errors = [], []

            def worker(seed):
                try:
                    with ServeClient(front.address) as client:
                        reply = client.submit(make_job())
                        results.append(reply)
                except Exception as error:  # pragma: no cover
                    errors.append(error)

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(6)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
            assert not errors
            assert len(results) == 6
            assert len({r["routed_to"] for r in results}) == 1
            values = {r["result"]["value"] for r in results}
            assert len(values) == 1  # bit-identical across clients


class TestConfigValidation:
    def test_empty_fleet_rejected(self):
        with pytest.raises(ValidationError):
            RouterConfig(daemons=())

    def test_duplicate_daemon_rejected(self):
        with pytest.raises(ValidationError):
            RouterConfig(daemons=("a:1", "a:1"))

    def test_bad_ranges_rejected(self):
        good = ("127.0.0.1:7000",)
        for bad in (
            dict(replication=0),
            dict(vnodes=0),
            dict(health_interval=0),
            dict(overload_depth_fraction=1.5),
            dict(breaker_failures=0),
            dict(hedge_delay=-1.0),
            dict(hedge_quantile=1.0),
            dict(pool_size=0),
            dict(default_deadline=0),
        ):
            with pytest.raises(ValidationError):
                RouterConfig(daemons=good, **bad)

    def test_hedging_enabled_property(self):
        good = ("127.0.0.1:7000",)
        assert not RouterConfig(daemons=good).hedging_enabled
        assert RouterConfig(daemons=good, hedge_delay=0.1).hedging_enabled
        assert RouterConfig(
            daemons=good, hedge_quantile=0.9
        ).hedging_enabled
