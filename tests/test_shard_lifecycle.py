"""Regression tests: ShardContext teardown safety + front-door validation.

The teardown half pins the double-close / ``__del__`` contract: closing
twice (or letting the GC close an already-closed context) is a no-op,
and a context that is still open when the interpreter exits is torn
down silently — no ``Exception ignored in:`` noise on stderr, exit 0.

The validation half pins the construction-time rejection of malformed
deadlines, retry counts, and ``host:port`` strings (for the shard
context, the worker ``--bind``, and the serve daemon's bind alike) —
a typo fails as one clear :class:`ValidationError`, not a deep socket
traceback under traffic.
"""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.serve.config import ServeConfig
from repro.shard import ShardContext
from repro.shard.remote import parse_address
from repro.utils.errors import ValidationError


class TestTeardown:
    def test_close_is_idempotent(self):
        shard = ShardContext(workers=2, min_items=0, min_bytes=0)
        shard.run(_double, [1, 2, 3])
        shard.close()
        shard.close()
        shard.close()

    def test_del_after_close_is_silent(self):
        shard = ShardContext(workers=2)
        shard.close()
        shard.__del__()  # the GC path on an already-closed context
        shard.__del__()

    def test_del_without_close_closes(self):
        shard = ShardContext(workers=2, min_items=0, min_bytes=0)
        shard.run(_double, [1, 2, 3])
        shard.__del__()
        assert shard._closed

    def test_interpreter_exit_with_open_context_is_clean(self):
        # A live pool abandoned at interpreter exit (the daemon-owned
        # context case) must not print "Exception ignored in" garbage
        # or hang; the subprocess must exit 0 with empty stderr.
        script = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.shard import ShardContext\n"
            "from tests.test_shard_lifecycle import _double\n"
            "shard = ShardContext(workers=2, min_items=0, min_bytes=0)\n"
            "print(shard.run(_double, [1, 2, 3]))\n"
            "# no close(): teardown happens via GC at finalization\n"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=120,
            cwd=_repo_root(),
        )
        assert result.returncode == 0, result.stderr
        assert "[2, 4, 6]" in result.stdout
        assert "Exception ignored" not in result.stderr
        assert "Traceback" not in result.stderr


class TestValidation:
    @pytest.mark.parametrize("timeout", [0, -1, -0.5])
    def test_nonpositive_timeout_rejected(self, timeout):
        with pytest.raises(ValidationError, match="deadline"):
            ShardContext(workers=2, timeout=timeout)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValidationError):
            ShardContext(workers=2, retries=-1)

    def test_negative_workers_rejected(self):
        with pytest.raises(ValidationError):
            ShardContext(workers=-1)

    @pytest.mark.parametrize("address", [
        "nonsense", ":8000", "host:", "host:abc", "host:-1",
        "host:65536", "host:99999",
    ])
    def test_parse_address_rejects_malformed(self, address):
        with pytest.raises(ValidationError) as excinfo:
            parse_address(address)
        assert address.partition(":")[0][:4] in str(excinfo.value) or (
            repr(address) in str(excinfo.value)
        )

    def test_parse_address_port_zero_gated(self):
        with pytest.raises(ValidationError):
            parse_address("host:0")
        assert parse_address("host:0", allow_port_zero=True) == ("host", 0)

    def test_parse_address_accepts_valid(self):
        assert parse_address("127.0.0.1:8000") == ("127.0.0.1", 8000)
        assert parse_address("[::1]:443") == ("[::1]", 443)

    def test_parse_address_names_the_caller(self):
        with pytest.raises(ValidationError, match="serve bind"):
            parse_address("oops", what="serve bind")

    @pytest.mark.parametrize("kwargs", [
        {"bind": "nonsense"},
        {"queue_depth": 0},
        {"max_inflight_mb": 0},
        {"workers": 0},
        {"batch_limit": 0},
        {"tenant_rate": -1.0},
        {"tenant_weights": {"a": 0.0}},
        {"default_deadline": 0},
        {"drain_grace": -1.0},
        {"max_datasets": 0},
    ])
    def test_serve_config_rejects_malformed(self, kwargs):
        with pytest.raises(ValidationError):
            ServeConfig(**kwargs)

    def test_worker_rejects_malformed_bind_cleanly(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro.shard.worker",
             "--bind", "garbage"],
            capture_output=True, text=True, timeout=60,
        )
        assert result.returncode == 2
        assert result.stderr.startswith("error:")
        assert "Traceback" not in result.stderr


def _double(item, common):
    return item * 2


def _repo_root() -> str:
    import os

    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
