"""Chaos suite: full pipeline runs under deterministic fault injection.

The gate (DESIGN.md §11): with a seeded :class:`FaultPlan` injecting
crash / slow / corrupt / drop faults at a combined ~25% task rate, full
SGLA and SGLA+ runs through both the ``process`` and ``remote`` shard
backends must *complete* — retries, re-dispatch and worker respawn do
the absorbing — and their ``w*`` / labels must be **bit-identical** to
the fault-free run.  That is the strongest statement the resilience
machine can make: failure handling is invisible in the output.

Identity holds by construction — faults expire after the first attempt
per task (``max_faulted_attempts=1``), tasks are deterministic, and
results are reassembled by global item position — so any drift is a real
resilience bug, not test flakiness.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core.pipeline import cluster_mvag
from repro.core.sgla import SGLAConfig
from repro.datasets.generator import generate_mvag
from repro.shard import FaultPlan, ShardContext

#: combined 25% fault rate, every transport-visible kind represented.
#: The seed is chosen so the *first* dispatch (SGLA's 4 view builds)
#: already draws a crash — the retries>=1 gate is deterministic.
CHAOS_PLAN = FaultPlan(
    seed=2,
    crash_rate=0.10,
    slow_rate=0.05,
    corrupt_rate=0.05,
    drop_rate=0.05,
    slow_seconds=0.01,
)


@pytest.fixture(scope="module")
def chaos_mvag():
    return generate_mvag(
        n_nodes=240,
        n_clusters=3,
        graph_view_strengths=[0.9, 0.2],
        attribute_view_dims=[20, 12],
        attribute_view_signals=[0.8, 0.7],
        seed=13,
    )


@pytest.fixture(scope="module")
def reference(chaos_mvag):
    """Fault-free outputs per method (the bit-identity baseline)."""
    outputs = {}
    for method in ("sgla", "sgla+"):
        with ShardContext(workers=2, min_items=0, min_bytes=0) as shard:
            outputs[method] = cluster_mvag(
                chaos_mvag, method=method, config=SGLAConfig(),
                shard=shard,
            )
    return outputs


def _chaos_context(backend: str) -> ShardContext:
    return ShardContext(
        workers=2,
        backend=backend,
        min_items=0,
        min_bytes=0,
        timeout=60.0,
        fault_plan=CHAOS_PLAN,
        # Effectively disable quarantine: at a 25% fault rate two
        # consecutive unlucky draws on one worker are likely, and this
        # gate asserts recovery *without* ladder degradation.
        quarantine_after=10,
    )


class TestProcessChaos:
    @pytest.mark.parametrize("method", ["sgla", "sgla+"])
    def test_bit_identical_under_faults(
        self, chaos_mvag, reference, method
    ):
        with _chaos_context("process") as shard:
            chaos = cluster_mvag(
                chaos_mvag, method=method, config=SGLAConfig(),
                shard=shard,
            )
            stats = shard.stats
        assert np.array_equal(
            chaos.integration.weights,
            reference[method].integration.weights,
        ), f"w* drifted under process chaos ({method})"
        assert np.array_equal(chaos.labels, reference[method].labels)
        assert stats.failures == 0  # every fault was absorbed
        assert stats.degradations == 0
        assert stats.retries >= 1  # ... and faults did actually fire
        assert stats.redispatches >= 1


class TestRemoteChaos:
    def test_bit_identical_under_faults_sgla_plus(
        self, chaos_mvag, reference
    ):
        # The full distributed gauntlet: injected crashes genuinely kill
        # worker processes (os._exit), drops swallow replies until the
        # deadline, corrupt replies fail the frame checksum — and the
        # fleet respawn + retry machinery must still deliver the exact
        # fault-free answer.
        with _chaos_context("remote") as shard:
            chaos = cluster_mvag(
                chaos_mvag, method="sgla+", config=SGLAConfig(),
                shard=shard,
            )
            stats = shard.stats
        assert np.array_equal(
            chaos.integration.weights,
            reference["sgla+"].integration.weights,
        ), "w* drifted under remote chaos"
        assert np.array_equal(chaos.labels, reference["sgla+"].labels)
        assert stats.failures == 0
        assert stats.degradations == 0
        assert stats.retries >= 1


class TestHangRecovery:
    def test_hung_task_recovers_on_fresh_deadline(self):
        # A hang must be bounded by the per-attempt deadline, and the
        # retry must get a *fresh* budget (not the stale remainder).
        plan = FaultPlan(seed=0, hang_rate=1.0, hang_seconds=30.0)
        with ShardContext(
            workers=2, min_items=0, min_bytes=0, timeout=1.0,
            fault_plan=plan,
        ) as ctx:
            started = time.monotonic()
            result = ctx.run(_identity, [1, 2, 3, 4])
            elapsed = time.monotonic() - started
        assert result == [1, 2, 3, 4]
        assert elapsed < 20.0  # deadline fired, nobody waited out the hang
        assert ctx.stats.retries >= 1
        assert ctx.stats.failures == 0


def _identity(item, common):
    return item
