"""Tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import main
from repro.datasets.io import load_mvag


class TestProfilesCommand:
    def test_lists_paper_datasets(self, capsys):
        assert main(["profiles"]) == 0
        out = capsys.readouterr().out
        for name in ("rm", "yelp", "mag_phy"):
            assert name in out

    def test_all_flag_includes_small(self, capsys):
        main(["profiles", "--all"])
        out = capsys.readouterr().out
        assert "yelp_small" in out


class TestGenerateCommand:
    def test_writes_npz(self, tmp_path, capsys):
        out_path = tmp_path / "data.npz"
        code = main(
            ["generate", "--profile", "yelp_small", "--out", str(out_path)]
        )
        assert code == 0
        mvag = load_mvag(out_path)
        assert mvag.n_nodes == 400

    def test_unknown_profile_errors(self, tmp_path, capsys):
        code = main(
            ["generate", "--profile", "nope", "--out", str(tmp_path / "x.npz")]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestClusterCommand:
    def test_cluster_profile_by_name(self, capsys):
        code = main(["cluster", "rm", "--method", "equal"])
        assert code == 0
        out = capsys.readouterr().out
        assert "acc" in out
        assert "view weights" in out

    def test_cluster_from_file_with_output(self, tmp_path, capsys):
        data = tmp_path / "data.npz"
        labels_path = tmp_path / "labels.npy"
        main(["generate", "--profile", "yelp_small", "--out", str(data)])
        code = main(
            ["cluster", str(data), "--method", "sgla+", "--out",
             str(labels_path)]
        )
        assert code == 0
        labels = np.load(labels_path)
        assert labels.shape == (400,)

    def test_graph_agg_has_no_weights_line(self, capsys):
        code = main(["cluster", "rm", "--method", "graph-agg"])
        assert code == 0
        assert "view weights" not in capsys.readouterr().out

    def test_chebyshev_backend_and_tol_ladder(self, capsys):
        code = main(
            ["cluster", "rm", "--method", "sgla",
             "--eigen-backend", "chebyshev", "--tol-ladder"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "view weights" in out
        assert "eigensolves" in out  # solver stats line


class TestEmbedCommand:
    def test_embed_profile(self, tmp_path, capsys):
        emb_path = tmp_path / "emb.npy"
        code = main(
            ["embed", "rm", "--dim", "16", "--backend", "sketchne",
             "--out", str(emb_path)]
        )
        assert code == 0
        embedding = np.load(emb_path)
        assert embedding.shape == (91, 16)
        out = capsys.readouterr().out
        assert "micro_f1" in out
