"""Tests for the MVAG data model."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.mvag import MVAG, ViewStats
from repro.utils.errors import ShapeError, ValidationError


def triangle():
    return np.array([[0, 1, 1], [1, 0, 1], [1, 1, 0]], dtype=float)


class TestConstruction:
    def test_basic(self):
        mvag = MVAG(graph_views=[triangle()], attribute_views=[np.ones((3, 2))])
        assert mvag.n_nodes == 3
        assert mvag.n_graph_views == 1
        assert mvag.n_attribute_views == 1
        assert mvag.n_views == 2

    def test_needs_a_view(self):
        with pytest.raises(ValidationError):
            MVAG()

    def test_node_count_consistency(self):
        with pytest.raises(ShapeError):
            MVAG(graph_views=[triangle()], attribute_views=[np.ones((4, 2))])

    def test_graph_views_must_be_square(self):
        with pytest.raises(ShapeError):
            MVAG(graph_views=[np.ones((2, 3))])

    def test_negative_weights_rejected(self):
        bad = triangle()
        bad[0, 1] = bad[1, 0] = -1.0
        with pytest.raises(ValidationError):
            MVAG(graph_views=[bad])

    def test_nan_attributes_rejected(self):
        features = np.ones((3, 2))
        features[0, 0] = np.nan
        with pytest.raises(ValidationError):
            MVAG(graph_views=[triangle()], attribute_views=[features])

    def test_attribute_only_mvag(self):
        mvag = MVAG(attribute_views=[np.ones((5, 2)), np.zeros((5, 3))])
        assert mvag.n_nodes == 5
        assert mvag.n_graph_views == 0


class TestCanonicalization:
    def test_self_loops_removed(self):
        adjacency = triangle()
        np.fill_diagonal(adjacency, 5.0)
        mvag = MVAG(graph_views=[adjacency])
        assert mvag.graph_views[0].diagonal().sum() == 0.0

    def test_asymmetric_input_symmetrized(self):
        directed = np.array([[0, 1.0, 0], [0, 0, 1.0], [0, 0, 0]])
        mvag = MVAG(graph_views=[directed])
        stored = mvag.graph_views[0]
        assert (abs(stored - stored.T)).nnz == 0

    def test_sparse_attribute_kept_sparse(self):
        features = sp.random(6, 10, density=0.3, format="csr")
        mvag = MVAG(graph_views=[np.zeros((6, 6))], attribute_views=[features])
        assert sp.issparse(mvag.attribute_views[0])


class TestLabels:
    def test_labels_validated(self):
        mvag = MVAG(graph_views=[triangle()], labels=[0, 1, 0])
        assert mvag.n_classes == 2

    def test_wrong_label_length(self):
        with pytest.raises(ShapeError):
            MVAG(graph_views=[triangle()], labels=[0, 1])

    def test_unlabeled(self):
        mvag = MVAG(graph_views=[triangle()])
        assert mvag.labels is None
        assert mvag.n_classes is None


class TestStats:
    def test_total_edges(self):
        mvag = MVAG(graph_views=[triangle(), triangle()])
        assert mvag.total_edges == 6

    def test_view_stats_order(self):
        mvag = MVAG(
            graph_views=[triangle()], attribute_views=[np.ones((3, 4))]
        )
        stats = mvag.view_stats()
        assert stats[0] == ViewStats(kind="graph", index=0, edges=3)
        assert stats[1] == ViewStats(kind="attribute", index=0, dim=4)

    def test_summary_dict(self):
        mvag = MVAG(
            graph_views=[triangle()],
            attribute_views=[np.ones((3, 4))],
            labels=[0, 0, 1],
            name="toy",
        )
        summary = mvag.summary()
        assert summary["name"] == "toy"
        assert summary["n"] == 3
        assert summary["r"] == 2
        assert summary["graph_edges"] == [3]
        assert summary["attribute_dims"] == [4]
        assert summary["k"] == 2

    def test_views_are_copied_lists(self):
        mvag = MVAG(graph_views=[triangle()])
        views = mvag.graph_views
        views.clear()
        assert mvag.n_graph_views == 1
