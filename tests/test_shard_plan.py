"""Property-based tests (seeded random trials) for ShardPlan and the
stats-merge algebra the shard subsystem's aggregation relies on.

No external property-testing dependency: trials are driven by a seeded
``numpy`` generator, so failures are reproducible from the seed printed
in the assertion message.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.neighbors import NeighborStats
from repro.shard import ShardPlan, ShardStats
from repro.solvers import SolverStats
from repro.solvers.base import EigenResult
from repro.utils.errors import ValidationError

N_TRIALS = 200


def _random_cases(seed: int):
    rng = np.random.default_rng(seed)
    for trial in range(N_TRIALS):
        n_items = int(rng.integers(0, 50))
        workers = int(rng.integers(1, 9))
        costs = None
        if rng.random() < 0.5:
            costs = rng.random(n_items) * float(rng.integers(1, 1000))
            if rng.random() < 0.2:
                costs[rng.random(n_items) < 0.3] = 0.0  # zero-cost items
        yield trial, n_items, workers, costs


class TestShardPlanProperties:
    def test_every_item_assigned_exactly_once(self):
        for trial, n_items, workers, costs in _random_cases(seed=7):
            plan = ShardPlan.build(n_items, workers, costs=costs)
            flat = [i for group in plan.assignments() for i in group]
            assert sorted(flat) == list(range(n_items)), (
                f"trial {trial}: items lost or duplicated "
                f"(n={n_items}, w={workers})"
            )

    def test_shard_ids_in_range_and_lists_increasing(self):
        for trial, n_items, workers, costs in _random_cases(seed=13):
            plan = ShardPlan.build(n_items, workers, costs=costs)
            assert plan.n_shards <= min(workers, max(n_items, 1)) or (
                n_items == 0 and plan.n_shards == 0
            )
            for shard, group in enumerate(plan.assignments()):
                assert all(
                    0 <= i < n_items for i in group
                ), f"trial {trial}: out-of-range item"
                assert group == sorted(group), (
                    f"trial {trial}: shard {shard} items not increasing"
                )

    def test_plan_is_reproducible(self):
        for trial, n_items, workers, costs in _random_cases(seed=29):
            first = ShardPlan.build(n_items, workers, costs=costs)
            second = ShardPlan.build(n_items, workers, costs=costs)
            assert first == second, f"trial {trial}: plan not a pure function"

    def test_contiguous_concat_is_identity_for_every_worker_count(self):
        """Result order never depends on the worker count.

        Concatenating a contiguous plan's shards in shard order yields
        ``0..n-1`` exactly — so reassembly by global index returns the
        same ordering whatever ``workers`` was, which is the partition-
        stability half of the determinism contract.
        """
        rng = np.random.default_rng(31)
        for _ in range(N_TRIALS):
            n_items = int(rng.integers(0, 60))
            for workers in range(1, 9):
                plan = ShardPlan.build(n_items, workers)
                flat = [i for group in plan.assignments() for i in group]
                assert flat == list(range(n_items))

    def test_item_set_stable_under_worker_count(self):
        """The assigned item *set* is identical for every worker count."""
        rng = np.random.default_rng(37)
        for _ in range(N_TRIALS // 2):
            n_items = int(rng.integers(1, 40))
            costs = rng.random(n_items)
            reference = None
            for workers in (1, 2, 3, 5, 8):
                plan = ShardPlan.build(n_items, workers, costs=costs)
                flat = sorted(
                    i for group in plan.assignments() for i in group
                )
                if reference is None:
                    reference = flat
                assert flat == reference

    def test_balanced_never_worse_than_single_heaviest_bound(self):
        """Greedy LPT load <= sum/shards + max cost (the classic bound)."""
        rng = np.random.default_rng(41)
        for _ in range(N_TRIALS // 2):
            n_items = int(rng.integers(1, 40))
            workers = int(rng.integers(1, 9))
            costs = rng.random(n_items) * 100
            plan = ShardPlan.build(n_items, workers, costs=costs)
            loads = [
                sum(costs[i] for i in group)
                for group in plan.assignments()
            ]
            bound = costs.sum() / plan.n_shards + costs.max()
            assert max(loads) <= bound + 1e-9

    def test_validation(self):
        with pytest.raises(ValidationError):
            ShardPlan.build(-1, 2)
        with pytest.raises(ValidationError):
            ShardPlan.build(3, 0)
        with pytest.raises(ValidationError):
            ShardPlan.build(3, 2, costs=[1.0])  # wrong length
        empty = ShardPlan.build(0, 4)
        assert empty.assignments() == []


# --------------------------------------------------------------------- #
# merge(stats) == sum(stats)
# --------------------------------------------------------------------- #


def _random_solver_stats(rng) -> SolverStats:
    stats = SolverStats()
    for _ in range(int(rng.integers(0, 6))):
        result = EigenResult(
            values=np.zeros(2),
            vectors=None,
            backend=str(rng.choice(["lanczos", "dense", "shard[lanczos]"])),
            matvecs=int(rng.integers(0, 100)),
        )
        stats.record(
            result,
            warm=bool(rng.random() < 0.5),
            batched=bool(rng.random() < 0.5),
            coarse=bool(rng.random() < 0.5),
        )
    stats.saved += int(rng.integers(0, 4))
    stats.tolerance_updates += int(rng.integers(0, 3))
    return stats


def _random_neighbor_stats(rng) -> NeighborStats:
    stats = NeighborStats(recall_sample=int(rng.integers(0, 64)))
    for _ in range(int(rng.integers(0, 5))):
        n = int(rng.integers(2, 500))
        stats.record_build(
            str(rng.choice(["exact", "rp-forest"])),
            n,
            int(rng.integers(0, n * n)),
        )
    if rng.random() < 0.5:
        stats.record_recall(int(rng.integers(0, 50)), int(rng.integers(50, 100)))
    return stats


def _solver_fields(stats: SolverStats) -> dict:
    return {
        "solves": stats.solves, "saved": stats.saved,
        "warm": stats.warm_solves, "cold": stats.cold_solves,
        "batched": stats.batched_solves, "matvecs": stats.matvecs,
        "coarse": stats.coarse_solves, "tol": stats.tolerance_updates,
        "by_backend": dict(stats.by_backend),
    }


def _neighbor_fields(stats: NeighborStats) -> dict:
    return {
        "builds": stats.builds, "nodes": stats.nodes,
        "cand": stats.candidate_pairs, "exh": stats.exhaustive_pairs,
        "hits": stats.recall_hits, "total": stats.recall_total,
        "by_backend": dict(stats.by_backend),
    }


def _sum_dicts(dicts):
    total: dict = {}
    for entry in dicts:
        for key, value in entry.items():
            if isinstance(value, dict):
                bucket = total.setdefault(key, {})
                for name, count in value.items():
                    bucket[name] = bucket.get(name, 0) + count
            else:
                total[key] = total.get(key, 0) + value
    return total


class TestStatsMergeProperties:
    def test_solver_stats_merge_equals_sum(self):
        rng = np.random.default_rng(53)
        for trial in range(N_TRIALS // 2):
            parts = [
                _random_solver_stats(rng)
                for _ in range(int(rng.integers(1, 6)))
            ]
            expected = _sum_dicts(_solver_fields(p) for p in parts)
            merged = SolverStats()
            for part in parts:
                merged.merge(part)
            assert _solver_fields(merged) == expected, f"trial {trial}"

    def test_neighbor_stats_merge_equals_sum(self):
        rng = np.random.default_rng(59)
        for trial in range(N_TRIALS // 2):
            parts = [
                _random_neighbor_stats(rng)
                for _ in range(int(rng.integers(1, 6)))
            ]
            expected = _sum_dicts(_neighbor_fields(p) for p in parts)
            merged = NeighborStats(recall_sample=0)
            for part in parts:
                merged.merge(part)
            assert _neighbor_fields(merged) == expected, f"trial {trial}"

    def test_shard_stats_merge_equals_sum(self):
        rng = np.random.default_rng(61)
        for _ in range(N_TRIALS // 4):
            parts = []
            for _ in range(int(rng.integers(1, 5))):
                stats = ShardStats()
                stats.dispatches = int(rng.integers(0, 5))
                stats.serial_dispatches = int(rng.integers(0, 5))
                stats.tasks = int(rng.integers(0, 20))
                stats.shards_used = int(rng.integers(0, 8))
                stats.segments = int(rng.integers(0, 10))
                stats.bytes_shared = int(rng.integers(0, 1 << 24))
                stats.failures = int(rng.integers(0, 2))
                parts.append(stats)
            merged = ShardStats()
            for part in parts:
                merged += part
            assert merged.tasks == sum(p.tasks for p in parts)
            assert merged.bytes_shared == sum(p.bytes_shared for p in parts)
            assert merged.dispatches == sum(p.dispatches for p in parts)

    def test_merge_is_aliasing_safe(self):
        """stats.merge(stats) doubles every counter (no double-count)."""
        rng = np.random.default_rng(67)
        solver = _random_solver_stats(rng)
        before = _solver_fields(solver)
        solver.merge(solver)
        after = _solver_fields(solver)
        for key, value in before.items():
            if key == "by_backend":
                assert after[key] == {
                    name: 2 * count for name, count in value.items()
                }
            else:
                assert after[key] == 2 * value
        neighbor = _random_neighbor_stats(rng)
        nbefore = _neighbor_fields(neighbor)
        neighbor.merge(neighbor)
        nafter = _neighbor_fields(neighbor)
        for key, value in nbefore.items():
            if key == "by_backend":
                assert nafter[key] == {
                    name: 2 * count for name, count in value.items()
                }
            else:
                assert nafter[key] == 2 * value

    def test_iadd_matches_merge(self):
        rng = np.random.default_rng(71)
        a1, a2 = _random_solver_stats(rng), _random_solver_stats(rng)
        b1 = SolverStats()
        b1.merge(a1)
        b1.merge(a2)
        b2 = SolverStats()
        b2 += a1
        b2 += a2
        assert _solver_fields(b1) == _solver_fields(b2)
