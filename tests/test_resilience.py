"""Tests for the shard resilience layer: retry, re-dispatch, quarantine,
degradation (DESIGN.md §11).

Backend-level behavior is exercised through the real ``process`` and
``serial`` backends plus fault injection; the director's bookkeeping
(quarantine cooldowns, sticky ladder position, deterministic backoff) is
tested directly with a fake clock.
"""

from __future__ import annotations

import pickle
import warnings

import pytest

from repro.shard import (
    FailureDirector,
    FaultPlan,
    RetryPolicy,
    ShardContext,
    ShardDegradation,
    ShardError,
)
from repro.utils.errors import ValidationError


def _square(item, common):
    return item * item


def _boom(item, common):
    raise ValueError("task bug, not infrastructure")


def _forced(**overrides) -> ShardContext:
    params = dict(workers=2, min_items=0, min_bytes=0)
    params.update(overrides)
    return ShardContext(**params)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValidationError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValidationError, match="backoff_factor"):
            RetryPolicy(backoff_factor=0.5)
        with pytest.raises(ValidationError, match="jitter"):
            RetryPolicy(jitter=2.0)
        with pytest.raises(ValidationError, match="deadline"):
            RetryPolicy(deadline=0.0)

    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_delay=0.1, backoff_factor=2.0, max_delay=0.3, jitter=0.0
        )
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(5) == pytest.approx(0.3)  # capped

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(base_delay=0.1, jitter=0.5, seed=4)
        first = [policy.delay(a, key=9) for a in range(5)]
        assert first == [policy.delay(a, key=9) for a in range(5)]
        for attempt, delay in enumerate(first):
            base = min(0.1 * 2.0 ** attempt, policy.max_delay)
            assert base <= delay <= base * 1.5
        # Different keys de-synchronize (the anti-lockstep property).
        assert first != [policy.delay(a, key=10) for a in range(5)]

    def test_policy_is_picklable(self):
        policy = RetryPolicy(max_attempts=5, seed=3)
        assert pickle.loads(pickle.dumps(policy)) == policy


class TestQuarantine:
    def _director(self, **overrides):
        clock = {"now": 0.0}
        params = dict(
            policy=RetryPolicy(),
            quarantine_after=2,
            quarantine_cooldown=10.0,
            clock=lambda: clock["now"],
        )
        params.update(overrides)
        return FailureDirector(**params), clock

    def test_quarantine_after_consecutive_failures(self):
        director, _ = self._director()
        director.record_failure("w1")
        assert not director.is_quarantined("w1")
        director.record_failure("w1")
        assert director.is_quarantined("w1")
        assert director.healthy_workers(["w1", "w2"]) == ["w2"]

    def test_success_resets_the_streak(self):
        director, _ = self._director()
        director.record_failure("w1")
        director.record_success("w1")
        director.record_failure("w1")
        assert not director.is_quarantined("w1")

    def test_cooldown_readmits_with_clean_slate(self):
        director, clock = self._director()
        director.record_failure("w1")
        director.record_failure("w1")
        assert director.is_quarantined("w1")
        clock["now"] = 10.5  # past the cooldown
        assert not director.is_quarantined("w1")
        # Re-admitted with a fresh streak: one failure does not re-ban.
        director.record_failure("w1")
        assert not director.is_quarantined("w1")

    def test_anonymous_workers_are_ignored(self):
        director, _ = self._director()
        director.record_failure(None)
        director.record_failure(None)
        assert director.healthy_workers(["w1"]) == ["w1"]

    def test_quarantine_counts_in_stats(self):
        from repro.shard import ShardStats

        director, _ = self._director()
        stats = ShardStats()
        director.record_failure("w1", stats=stats)
        director.record_failure("w1", stats=stats)
        director.record_failure("w1", stats=stats)  # already quarantined
        assert stats.workers_quarantined == 1

    def test_validation(self):
        with pytest.raises(ValidationError, match="quarantine_after"):
            FailureDirector(RetryPolicy(), quarantine_after=0)


class TestLadder:
    def test_only_remote_degrades(self):
        director = FailureDirector(RetryPolicy())
        assert director.ladder_for("remote") == (
            "remote", "process", "serial"
        )
        assert director.ladder_for("process") == ("process",)
        assert director.ladder_for("serial") == ("serial",)
        assert director.ladder_for("plugin-backend") == ("plugin-backend",)

    def test_effective_backend_tracks_sticky_rung(self):
        director = FailureDirector(RetryPolicy())
        assert director.effective_backend("remote") == "remote"
        director._rung = 1
        assert director.effective_backend("remote") == "process"
        # Non-ladder backends are unaffected by the rung.
        assert director.effective_backend("process") == "process"


class TestRetryThroughBackends:
    def test_injected_crash_is_retried_to_success_process(self):
        plan = FaultPlan(seed=0, crash_rate=0.5)
        with _forced(backend="process", fault_plan=plan,
                     timeout=30.0) as ctx:
            result = ctx.run(_square, list(range(8)))
        assert result == [i * i for i in range(8)]
        assert ctx.stats.failures == 0
        assert ctx.stats.retries >= 1
        assert ctx.stats.redispatches >= 1

    def test_injected_faults_are_retried_serial_rung(self):
        plan = FaultPlan(seed=1, crash_rate=0.4, corrupt_rate=0.3)
        with _forced(backend="serial", workers=1, fault_plan=plan) as ctx:
            result = ctx.run(_square, list(range(10)), dispatch=True)
        assert result == [i * i for i in range(10)]
        assert ctx.stats.failures == 0

    def test_results_identical_with_and_without_faults(self):
        items = list(range(12))
        with _forced(backend="process", timeout=30.0) as clean_ctx:
            clean = clean_ctx.run(_square, items)
        plan = FaultPlan(seed=5, crash_rate=0.3, drop_rate=0.2)
        with _forced(backend="process", fault_plan=plan,
                     timeout=30.0) as chaos_ctx:
            chaos = chaos_ctx.run(_square, items)
        assert clean == chaos

    def test_task_bugs_fail_fast_without_retry(self):
        with _forced(backend="process", timeout=30.0) as ctx:
            with pytest.raises(ShardError, match="task bug"):
                ctx.run(_boom, list(range(4)))
        assert ctx.stats.retries == 0  # deterministic bugs never retry

    def test_exhausted_rung_raises_structured_error(self):
        # Faults on every attempt: the process rung (no lower rung)
        # must exhaust its retries and raise with full context.
        plan = FaultPlan(seed=0, crash_rate=1.0, max_faulted_attempts=99)
        with _forced(backend="process", fault_plan=plan, retries=1,
                     timeout=30.0) as ctx:
            with pytest.raises(ShardError) as excinfo:
                ctx.run(_square, list(range(4)))
        error = excinfo.value
        assert error.backend == "process"
        assert error.attempts == 2
        assert error.elapsed is not None
        assert "every ladder rung" in str(error)
        assert ctx.stats.failures == 1
        # The context survives: the next dispatch works fault-free.
        with _forced(backend="process", timeout=30.0) as ctx2:
            assert ctx2.run(_square, [2, 3]) == [4, 9]

    def test_degradation_warning_is_loud_and_sticky(self):
        # All remote attempts fail (no fleet can start: spawn count 0
        # workers is impossible, so use an unreachable external address).
        with _forced(
            backend="remote",
            remote_workers=["127.0.0.1:1"],  # nothing listens there
            retries=0,
            timeout=5.0,
            quarantine_cooldown=600.0,
        ) as ctx:
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                result = ctx.run(_square, [1, 2, 3, 4])
            assert result == [1, 4, 9, 16]
            degradations = [
                w for w in caught if w.category is ShardDegradation
            ]
            assert len(degradations) == 1
            assert "degrading to 'process'" in str(degradations[0].message)
            assert ctx.stats.degradations == 1
            # Sticky: the next dispatch starts at the degraded rung, so
            # no further warning is emitted.
            with warnings.catch_warnings(record=True) as again:
                warnings.simplefilter("always")
                assert ctx.run(_square, [5, 6]) == [25, 36]
            assert not [
                w for w in again if w.category is ShardDegradation
            ]
            assert ctx.director.effective_backend("remote") == "process"

    def test_context_validation(self):
        with pytest.raises(ValidationError, match="retries"):
            ShardContext(workers=2, retries=-1)
