"""Tests for the distributed ``remote`` shard backend (DESIGN.md §11).

Covers the wire protocol (framing, integrity, corruption detection),
spawned-fleet lifecycle (registration, self-recycling restart
transparency, respawn-on-death), dispatch correctness vs the serial
reference, and the acceptance scenario: every remote worker killed
mid-run degrades down the ladder and the run still completes with
correct results.
"""

from __future__ import annotations

import socket
import warnings

import pytest

from repro.shard import (
    FaultPlan,
    ShardContext,
    ShardDegradation,
    ShardError,
    WorkerFleet,
)
from repro.shard.remote import (
    FrameCorrupted,
    FrameError,
    parse_address,
    recv_frame,
    send_frame,
)
from repro.utils.errors import ValidationError


def _square(item, common):
    return item * item + (common or {}).get("offset", 0)


def _boom(item, common):
    raise ValueError("task bug in the worker")


def _remote(**overrides) -> ShardContext:
    params = dict(
        workers=2, backend="remote", min_items=0, min_bytes=0,
        timeout=30.0,
    )
    params.update(overrides)
    return ShardContext(**params)


# --------------------------------------------------------------------- #
# Wire protocol
# --------------------------------------------------------------------- #


class TestWireProtocol:
    def _pair(self):
        a, b = socket.socketpair()
        a.settimeout(5.0)
        b.settimeout(5.0)
        return a, b

    def test_roundtrip(self):
        a, b = self._pair()
        try:
            payload = {"op": "run", "items": list(range(100))}
            send_frame(a, payload)
            assert recv_frame(b) == payload
        finally:
            a.close()
            b.close()

    def test_corrupted_frame_is_detected(self):
        a, b = self._pair()
        try:
            send_frame(a, {"ok": True, "results": [1, 2, 3]}, corrupt=True)
            with pytest.raises(FrameCorrupted):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_wrong_authkey_fails_integrity(self):
        a, b = self._pair()
        try:
            send_frame(a, {"op": "ping"}, authkey=b"key-one")
            with pytest.raises(FrameCorrupted):
                recv_frame(b, authkey=b"key-two")
        finally:
            a.close()
            b.close()

    def test_bad_magic_rejected(self):
        a, b = self._pair()
        try:
            a.sendall(b"XXXX" + b"\x00" * 24)
            with pytest.raises(FrameError, match="magic"):
                recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_parse_address(self):
        assert parse_address("10.0.0.5:9100") == ("10.0.0.5", 9100)
        with pytest.raises(ValidationError, match="host:port"):
            parse_address("9100")
        with pytest.raises(ValidationError, match="port"):
            parse_address("host:abc")


class TestFleetValidation:
    def test_needs_addresses_or_spawn(self):
        with pytest.raises(ValidationError, match="addresses or a spawn"):
            WorkerFleet()

    def test_bad_external_address_fails_fast(self):
        fleet = WorkerFleet(addresses=["nonsense"])
        with pytest.raises(ValidationError, match="host:port"):
            fleet.ensure()


# --------------------------------------------------------------------- #
# Spawned-fleet dispatch (one shared fleet per class: spawn is ~1s/worker)
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def remote_ctx():
    with _remote(workers=2) as ctx:
        yield ctx


class TestRemoteDispatch:
    def test_results_match_serial_reference(self, remote_ctx):
        items = list(range(17))
        expected = [_square(item, {"offset": 3}) for item in items]
        assert remote_ctx.run(
            _square, items, common={"offset": 3}
        ) == expected

    def test_workers_register_with_pids(self, remote_ctx):
        fleet = remote_ctx.remote_fleet()
        fleet.ensure()
        ids = fleet.worker_ids()
        assert len(ids) == 2
        for worker_id in ids:
            client = fleet.client(worker_id)
            client.connect()
            assert isinstance(client.pid, int)
            assert client.ping()

    def test_payloads_travel_inline_not_shm(self, remote_ctx):
        import numpy as np

        spec = remote_ctx.share(np.ones((4, 4)))
        assert spec.array is not None
        assert spec.shm_name is None
        assert remote_ctx.stats.segments == 0

    def test_task_bug_propagates_with_original_text(self, remote_ctx):
        with pytest.raises(ShardError, match="task bug in the worker"):
            remote_ctx.run(_boom, [1, 2, 3, 4])
        # The fleet survives a task bug: workers were healthy.
        assert remote_ctx.run(_square, [5]) == [25]


class TestRestartTransparency:
    def test_max_tasks_recycles_workers_transparently(self):
        # workers=2 keeps the context active (dispatching); the fleet
        # itself is a single worker so every shard lands on it.
        with _remote(
            workers=2, remote_workers=1, remote_max_tasks=3
        ) as ctx:
            fleet = ctx.remote_fleet()
            fleet.ensure()
            first_id = fleet.worker_ids()[0]
            client = fleet.client(first_id)
            client.connect()
            first_pid = client.pid
            # Three dispatches x 2 tasks: the worker crosses max_tasks
            # on the second and self-recycles; the third must land on
            # its transparent replacement with correct results.
            for round_index in range(3):
                items = [round_index * 10, round_index * 10 + 1]
                assert ctx.run(_square, items) == [
                    item * item for item in items
                ]
            fleet.ensure()
            ids = fleet.worker_ids()
            assert len(ids) == 1
            replacement = fleet.client(ids[0])
            replacement.connect()
            assert replacement.pid != first_pid
            assert ctx.stats.failures == 0
            assert ctx.stats.degradations == 0


class TestKilledFleet:
    def test_killing_all_workers_mid_run_lands_on_serial(self):
        # Acceptance scenario: after a healthy remote dispatch, every
        # worker is killed with respawn disabled.  The next dispatch
        # must walk the whole ladder — remote exhausted (dead fleet),
        # process rung faulted by the then-armed plan — and complete on
        # serial with correct results and loud warnings.
        with _remote(
            workers=2,
            remote_respawn=False,
            retries=0,
            timeout=10.0,
            quarantine_cooldown=600.0,
        ) as ctx:
            items = list(range(6))
            assert ctx.run(_square, items) == [i * i for i in items]
            ctx.remote_fleet().kill_all()
            # Arm faults for the process rung only now, so the healthy
            # dispatch above ran clean: items reach the process rung
            # with one failed attempt behind them (< 2), crash there,
            # and run clean on serial (attempt 2).
            ctx.director.fault_plan = FaultPlan(
                seed=0, crash_rate=1.0, max_faulted_attempts=2
            )
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                result = ctx.run(_square, items)
            assert result == [i * i for i in items]
            messages = [
                str(w.message) for w in caught
                if w.category is ShardDegradation
            ]
            assert len(messages) == 2
            assert "degrading to 'process'" in messages[0]
            assert "degrading to 'serial'" in messages[1]
            assert ctx.director.effective_backend("remote") == "serial"
            assert ctx.stats.degradations == 2
            assert ctx.stats.failures == 0  # the run completed

    def test_dead_spawned_worker_is_respawned(self):
        with _remote(workers=2, remote_workers=1) as ctx:
            assert ctx.run(_square, [1, 2]) == [1, 4]
            fleet = ctx.remote_fleet()
            old_id = fleet.worker_ids()[0]
            fleet.kill_all()
            # The next dispatch sees the dead socket, marks the worker
            # dead, and the retry runs on a freshly spawned worker.
            assert ctx.run(_square, [3, 4]) == [9, 16]
            assert ctx.stats.degradations == 0
            new_ids = fleet.worker_ids()
            assert len(new_ids) == 1
            assert new_ids != [old_id] or fleet.client(
                new_ids[0]
            ).ping()
