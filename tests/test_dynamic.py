"""Tests for the dynamic-MVAG extension (stream, incremental, lazy)."""

import numpy as np
import pytest

from repro.core.laplacian import build_view_laplacians
from repro.core.objective import SpectralObjective
from repro.datasets.generator import generate_mvag
from repro.dynamic.incremental import WarmStartObjective
from repro.dynamic.lazy import LazySGLA
from repro.dynamic.stream import DynamicMVAG, EdgeUpdate
from repro.utils.errors import NotFittedError, ValidationError


@pytest.fixture()
def small_dynamic():
    mvag = generate_mvag(
        n_nodes=80,
        n_clusters=2,
        graph_view_strengths=[0.85, 0.3],
        attribute_view_dims=[12],
        seed=5,
    )
    return DynamicMVAG(mvag, knn_k=5), mvag


class TestEdgeUpdate:
    def test_self_loop_rejected(self):
        with pytest.raises(ValidationError):
            EdgeUpdate(view=0, u=1, v=1)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValidationError):
            EdgeUpdate(view=0, u=0, v=1, weight=-1.0)


class TestDynamicMVAG:
    def test_snapshot_round_trip(self, small_dynamic):
        dynamic, mvag = small_dynamic
        snapshot = dynamic.snapshot()
        assert snapshot.n_nodes == mvag.n_nodes
        assert snapshot.n_views == mvag.n_views
        for a, b in zip(snapshot.graph_views, mvag.graph_views):
            assert (a != b).nnz == 0

    def test_original_not_mutated(self, small_dynamic):
        dynamic, mvag = small_dynamic
        before = mvag.graph_views[0].copy()
        dynamic.apply_edge_update(EdgeUpdate(view=0, u=0, v=1, weight=5.0))
        assert (mvag.graph_views[0] != before).nnz == 0

    def test_edge_insert_visible_in_snapshot(self, small_dynamic):
        dynamic, _ = small_dynamic
        dynamic.apply_edge_update(EdgeUpdate(view=0, u=0, v=1, weight=3.0))
        snapshot = dynamic.snapshot()
        assert snapshot.graph_views[0][0, 1] == 3.0
        assert snapshot.graph_views[0][1, 0] == 3.0

    def test_edge_delete(self, small_dynamic):
        dynamic, _ = small_dynamic
        dynamic.apply_edge_update(EdgeUpdate(view=0, u=0, v=1, weight=2.0))
        dynamic.apply_edge_update(EdgeUpdate(view=0, u=0, v=1, weight=0.0))
        snapshot = dynamic.snapshot()
        assert snapshot.graph_views[0][0, 1] == 0.0

    def test_laplacian_matches_static_rebuild(self, small_dynamic):
        dynamic, _ = small_dynamic
        updates = [
            EdgeUpdate(view=0, u=2, v=7),
            EdgeUpdate(view=1, u=4, v=9, weight=2.0),
            EdgeUpdate(view=0, u=11, v=3),
        ]
        dynamic.apply_edge_updates(updates)
        snapshot = dynamic.snapshot()
        static = build_view_laplacians(snapshot, knn_k=5)
        streamed = dynamic.view_laplacians()
        for a, b in zip(streamed, static):
            assert abs(a - b).max() < 1e-10

    def test_attribute_update_invalidates_knn(self, small_dynamic):
        dynamic, _ = small_dynamic
        graph_views = dynamic.n_graph_views
        before = dynamic.view_laplacian(graph_views)  # attr view Laplacian
        dynamic.update_attributes(0, 3, np.full(12, 9.0))
        after = dynamic.view_laplacian(graph_views)
        assert abs(before - after).max() > 0

    def test_attribute_update_shape_checked(self, small_dynamic):
        dynamic, _ = small_dynamic
        with pytest.raises(ValidationError):
            dynamic.update_attributes(0, 3, np.ones(5))

    def test_bad_view_indices(self, small_dynamic):
        dynamic, _ = small_dynamic
        with pytest.raises(ValidationError):
            dynamic.apply_edge_update(EdgeUpdate(view=9, u=0, v=1))
        with pytest.raises(ValidationError):
            dynamic.update_attributes(5, 0, np.ones(12))

    def test_update_counter(self, small_dynamic):
        dynamic, _ = small_dynamic
        assert dynamic.updates_since_snapshot == 0
        dynamic.apply_edge_update(EdgeUpdate(view=0, u=0, v=1))
        assert dynamic.updates_since_snapshot == 1
        dynamic.snapshot()
        assert dynamic.updates_since_snapshot == 0


class TestWarmStartObjective:
    def test_matches_cold_objective(self, small_dynamic):
        dynamic, mvag = small_dynamic
        laplacians = dynamic.view_laplacians()
        warm = WarmStartObjective(laplacians, k=2, gamma=0.5)
        cold = SpectralObjective(laplacians, k=2, gamma=0.5)
        for weights in ([0.5, 0.3, 0.2], [1 / 3] * 3, [0.2, 0.2, 0.6]):
            assert warm(np.asarray(weights)) == pytest.approx(
                cold(np.asarray(weights)), abs=1e-4
            )

    def test_warm_start_engages_on_larger_graphs(self):
        mvag = generate_mvag(
            n_nodes=400,
            n_clusters=3,
            graph_view_strengths=[0.8, 0.3],
            attribute_view_dims=[16],
            seed=6,
        )
        laplacians = build_view_laplacians(mvag, knn_k=5)
        warm = WarmStartObjective(laplacians, k=3, gamma=0.5)
        warm(np.asarray([1 / 3] * 3))
        warm(np.asarray([0.34, 0.33, 0.33]))
        assert warm.n_warm_evaluations >= 1

    def test_validation(self, small_dynamic):
        dynamic, _ = small_dynamic
        laplacians = dynamic.view_laplacians()
        with pytest.raises(ValidationError):
            WarmStartObjective([], k=2)
        with pytest.raises(ValidationError):
            WarmStartObjective(laplacians, k=0)
        warm = WarmStartObjective(laplacians, k=2)
        with pytest.raises(ValidationError):
            warm.set_laplacians(laplacians[:1])


class TestLazySGLA:
    def test_requires_fit(self, small_dynamic):
        dynamic, _ = small_dynamic
        lazy = LazySGLA(k=2)
        with pytest.raises(NotFittedError):
            lazy.refresh(dynamic)
        with pytest.raises(NotFittedError):
            lazy.laplacian(dynamic)

    def test_small_updates_do_not_refit(self, small_dynamic):
        dynamic, _ = small_dynamic
        lazy = LazySGLA(k=2, drift_threshold=0.25).fit(dynamic)
        dynamic.apply_edge_update(EdgeUpdate(view=1, u=0, v=1))
        report = lazy.refresh(dynamic)
        assert not report.refitted
        assert report.n_objective_evaluations <= 1

    def test_large_rewiring_triggers_refit(self, small_dynamic):
        dynamic, mvag = small_dynamic
        lazy = LazySGLA(k=2, drift_threshold=0.05).fit(dynamic)
        rng = np.random.default_rng(0)
        labels = mvag.labels
        # Flood the strong view with cross-cluster edges: big drift.
        cluster_a = np.flatnonzero(labels == 0)
        cluster_b = np.flatnonzero(labels == 1)
        updates = [
            EdgeUpdate(
                view=0,
                u=int(rng.choice(cluster_a)),
                v=int(rng.choice(cluster_b)),
                weight=3.0,
            )
            for _ in range(200)
        ]
        dynamic.apply_edge_updates(updates)
        report = lazy.refresh(dynamic)
        assert report.drift > 0.05
        assert report.refitted
        assert lazy.total_refits == 1

    def test_zero_threshold_always_refits(self, small_dynamic):
        dynamic, _ = small_dynamic
        lazy = LazySGLA(k=2, drift_threshold=0.0).fit(dynamic)
        dynamic.apply_edge_update(EdgeUpdate(view=0, u=0, v=2))
        report = lazy.refresh(dynamic)
        assert report.refitted

    def test_laplacian_shape(self, small_dynamic):
        dynamic, _ = small_dynamic
        lazy = LazySGLA(k=2).fit(dynamic)
        laplacian = lazy.laplacian(dynamic)
        assert laplacian.shape == (dynamic.n_nodes, dynamic.n_nodes)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValidationError):
            LazySGLA(k=2, drift_threshold=-0.1)

    def test_weights_stay_on_simplex_through_stream(self, small_dynamic):
        dynamic, _ = small_dynamic
        lazy = LazySGLA(k=2, drift_threshold=0.02).fit(dynamic)
        rng = np.random.default_rng(1)
        for _ in range(5):
            updates = [
                EdgeUpdate(
                    view=int(rng.integers(2)),
                    u=int(rng.integers(80)),
                    v=int((rng.integers(79) + 1 + rng.integers(80)) % 80),
                )
                for _ in range(10)
            ]
            updates = [u for u in updates if u.u != u.v]
            dynamic.apply_edge_updates(updates)
            report = lazy.refresh(dynamic)
            assert np.all(report.weights >= -1e-12)
            assert report.weights.sum() == pytest.approx(1.0)
