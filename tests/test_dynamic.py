"""Tests for the dynamic-MVAG extension (stream, incremental, lazy)."""

import numpy as np
import pytest

from repro.core.laplacian import build_view_laplacians
from repro.core.objective import SpectralObjective
from repro.datasets.generator import generate_mvag
from repro.dynamic.incremental import WarmStartObjective
from repro.dynamic.lazy import LazySGLA
from repro.dynamic.stream import DynamicMVAG, EdgeUpdate
from repro.utils.errors import NotFittedError, ValidationError


@pytest.fixture()
def small_dynamic():
    mvag = generate_mvag(
        n_nodes=80,
        n_clusters=2,
        graph_view_strengths=[0.85, 0.3],
        attribute_view_dims=[12],
        seed=5,
    )
    return DynamicMVAG(mvag, knn_k=5), mvag


class TestEdgeUpdate:
    def test_self_loop_rejected(self):
        with pytest.raises(ValidationError):
            EdgeUpdate(view=0, u=1, v=1)

    def test_negative_weight_rejected(self):
        with pytest.raises(ValidationError):
            EdgeUpdate(view=0, u=0, v=1, weight=-1.0)


class TestDynamicMVAG:
    def test_snapshot_round_trip(self, small_dynamic):
        dynamic, mvag = small_dynamic
        snapshot = dynamic.snapshot()
        assert snapshot.n_nodes == mvag.n_nodes
        assert snapshot.n_views == mvag.n_views
        for a, b in zip(snapshot.graph_views, mvag.graph_views):
            assert (a != b).nnz == 0

    def test_original_not_mutated(self, small_dynamic):
        dynamic, mvag = small_dynamic
        before = mvag.graph_views[0].copy()
        dynamic.apply_edge_update(EdgeUpdate(view=0, u=0, v=1, weight=5.0))
        assert (mvag.graph_views[0] != before).nnz == 0

    def test_edge_insert_visible_in_snapshot(self, small_dynamic):
        dynamic, _ = small_dynamic
        dynamic.apply_edge_update(EdgeUpdate(view=0, u=0, v=1, weight=3.0))
        snapshot = dynamic.snapshot()
        assert snapshot.graph_views[0][0, 1] == 3.0
        assert snapshot.graph_views[0][1, 0] == 3.0

    def test_edge_delete(self, small_dynamic):
        dynamic, _ = small_dynamic
        dynamic.apply_edge_update(EdgeUpdate(view=0, u=0, v=1, weight=2.0))
        dynamic.apply_edge_update(EdgeUpdate(view=0, u=0, v=1, weight=0.0))
        snapshot = dynamic.snapshot()
        assert snapshot.graph_views[0][0, 1] == 0.0

    def test_laplacian_matches_static_rebuild(self, small_dynamic):
        dynamic, _ = small_dynamic
        updates = [
            EdgeUpdate(view=0, u=2, v=7),
            EdgeUpdate(view=1, u=4, v=9, weight=2.0),
            EdgeUpdate(view=0, u=11, v=3),
        ]
        dynamic.apply_edge_updates(updates)
        snapshot = dynamic.snapshot()
        static = build_view_laplacians(snapshot, knn_k=5)
        streamed = dynamic.view_laplacians()
        for a, b in zip(streamed, static):
            assert abs(a - b).max() < 1e-10

    def test_attribute_update_invalidates_knn(self, small_dynamic):
        dynamic, _ = small_dynamic
        graph_views = dynamic.n_graph_views
        before = dynamic.view_laplacian(graph_views)  # attr view Laplacian
        dynamic.update_attributes(0, 3, np.full(12, 9.0))
        after = dynamic.view_laplacian(graph_views)
        assert abs(before - after).max() > 0

    def test_attribute_update_shape_checked(self, small_dynamic):
        dynamic, _ = small_dynamic
        with pytest.raises(ValidationError):
            dynamic.update_attributes(0, 3, np.ones(5))

    def test_bad_view_indices(self, small_dynamic):
        dynamic, _ = small_dynamic
        with pytest.raises(ValidationError):
            dynamic.apply_edge_update(EdgeUpdate(view=9, u=0, v=1))
        with pytest.raises(ValidationError):
            dynamic.update_attributes(5, 0, np.ones(12))

    def test_update_counter(self, small_dynamic):
        dynamic, _ = small_dynamic
        assert dynamic.updates_since_snapshot == 0
        dynamic.apply_edge_update(EdgeUpdate(view=0, u=0, v=1))
        assert dynamic.updates_since_snapshot == 1
        dynamic.snapshot()
        assert dynamic.updates_since_snapshot == 0


class TestIncrementalKnnState:
    """Cached row normalization + forest reuse across attribute updates."""

    def test_dense_row_cache_matches_static_rebuild(self, small_dynamic):
        dynamic, _ = small_dynamic
        dynamic.view_laplacians()  # prime the normalized cache
        rng = np.random.default_rng(0)
        for node in (3, 17, 40):
            dynamic.update_attributes(0, node, rng.standard_normal(12))
        static = build_view_laplacians(dynamic.snapshot(), knn_k=5)
        for a, b in zip(dynamic.view_laplacians(), static):
            assert abs(a - b).max() < 1e-10

    def test_sparse_row_splice_matches_static_rebuild(self):
        import scipy.sparse as sp

        from repro.core.mvag import MVAG

        rng = np.random.default_rng(1)
        dense = np.abs(rng.standard_normal((70, 20)))
        dense[rng.random((70, 20)) < 0.7] = 0.0
        mvag = MVAG(
            graph_views=[sp.eye(70).tocsr() * 0],
            attribute_views=[sp.csr_matrix(dense)],
        )
        dynamic = DynamicMVAG(mvag, knn_k=4)
        dynamic.view_laplacian(1)  # prime the normalized cache
        for node in (0, 12, 69):
            row = np.abs(rng.standard_normal(20))
            row[rng.random(20) < 0.5] = 0.0
            dynamic.update_attributes(0, node, row)
        static = build_view_laplacians(dynamic.snapshot(), knn_k=4)
        streamed = dynamic.view_laplacians()
        assert abs(streamed[1] - static[1]).max() < 1e-10

    def test_update_before_first_build_matches(self, small_dynamic):
        # No cache primed yet: the first build must normalize fresh.
        dynamic, _ = small_dynamic
        dynamic.update_attributes(0, 2, np.full(12, 3.0))
        static = build_view_laplacians(dynamic.snapshot(), knn_k=5)
        streamed = dynamic.view_laplacians()
        for a, b in zip(streamed, static):
            assert abs(a - b).max() < 1e-10

    def test_forest_cached_and_reused(self):
        mvag = generate_mvag(
            n_nodes=700,
            n_clusters=3,
            graph_view_strengths=[0.8],
            attribute_view_dims=[16],
            seed=7,
        )
        dynamic = DynamicMVAG(
            mvag, knn_k=5, knn_backend="rp-forest",
            knn_params={"n_trees": 4, "leaf_size": 64},
        )
        attr_view = dynamic.n_graph_views
        dynamic.view_laplacian(attr_view)
        assert 0 in dynamic._forests
        forest = dynamic._forests[0]
        dynamic.update_attributes(
            0, 5, np.random.default_rng(1).standard_normal(16)
        )
        dynamic.view_laplacian(attr_view)
        # same forest object survives the update (rerouted, not rebuilt)
        assert dynamic._forests[0] is forest
        assert dynamic.neighbor_stats.by_backend.get("rp-forest") == 2

    def test_forest_update_matches_explicit_reuse(self):
        from repro.core.knn import knn_graph

        mvag = generate_mvag(
            n_nodes=700,
            n_clusters=3,
            graph_view_strengths=[0.8],
            attribute_view_dims=[16],
            seed=8,
        )
        params = {"n_trees": 4, "leaf_size": 64}
        dynamic = DynamicMVAG(
            mvag, knn_k=5, knn_backend="rp-forest", knn_params=params
        )
        attr_view = dynamic.n_graph_views
        dynamic.view_laplacian(attr_view)
        new_row = np.random.default_rng(2).standard_normal(16)
        dynamic.update_attributes(0, 9, new_row)
        streamed = dynamic.view_laplacian(attr_view)
        # Ground truth: the same forest state applied to the same data.
        from repro.core.laplacian import normalized_laplacian

        expected = normalized_laplacian(
            knn_graph(
                dynamic._normalized[0],
                k=5,
                backend="rp-forest",
                backend_params={**params, "forest": dynamic._forests[0]},
                assume_normalized=True,
            )
        )
        assert abs(streamed - expected).max() < 1e-12


class TestWarmStartObjective:
    def test_matches_cold_objective(self, small_dynamic):
        dynamic, mvag = small_dynamic
        laplacians = dynamic.view_laplacians()
        warm = WarmStartObjective(laplacians, k=2, gamma=0.5)
        cold = SpectralObjective(laplacians, k=2, gamma=0.5)
        for weights in ([0.5, 0.3, 0.2], [1 / 3] * 3, [0.2, 0.2, 0.6]):
            assert warm(np.asarray(weights)) == pytest.approx(
                cold(np.asarray(weights)), abs=1e-4
            )

    def test_warm_start_engages_on_larger_graphs(self):
        mvag = generate_mvag(
            n_nodes=400,
            n_clusters=3,
            graph_view_strengths=[0.8, 0.3],
            attribute_view_dims=[16],
            seed=6,
        )
        laplacians = build_view_laplacians(mvag, knn_k=5)
        warm = WarmStartObjective(laplacians, k=3, gamma=0.5)
        warm(np.asarray([1 / 3] * 3))
        warm(np.asarray([0.34, 0.33, 0.33]))
        assert warm.n_warm_evaluations >= 1

    def test_validation(self, small_dynamic):
        dynamic, _ = small_dynamic
        laplacians = dynamic.view_laplacians()
        with pytest.raises(ValidationError):
            WarmStartObjective([], k=2)
        with pytest.raises(ValidationError):
            WarmStartObjective(laplacians, k=0)
        warm = WarmStartObjective(laplacians, k=2)
        with pytest.raises(ValidationError):
            warm.set_laplacians(laplacians[:1])


class TestLazySGLA:
    def test_requires_fit(self, small_dynamic):
        dynamic, _ = small_dynamic
        lazy = LazySGLA(k=2)
        with pytest.raises(NotFittedError):
            lazy.refresh(dynamic)
        with pytest.raises(NotFittedError):
            lazy.laplacian(dynamic)

    def test_small_updates_do_not_refit(self, small_dynamic):
        dynamic, _ = small_dynamic
        lazy = LazySGLA(k=2, drift_threshold=0.25).fit(dynamic)
        dynamic.apply_edge_update(EdgeUpdate(view=1, u=0, v=1))
        report = lazy.refresh(dynamic)
        assert not report.refitted
        assert report.n_objective_evaluations <= 1

    def test_large_rewiring_triggers_refit(self, small_dynamic):
        dynamic, mvag = small_dynamic
        lazy = LazySGLA(k=2, drift_threshold=0.05).fit(dynamic)
        rng = np.random.default_rng(0)
        labels = mvag.labels
        # Flood the strong view with cross-cluster edges: big drift.
        cluster_a = np.flatnonzero(labels == 0)
        cluster_b = np.flatnonzero(labels == 1)
        updates = [
            EdgeUpdate(
                view=0,
                u=int(rng.choice(cluster_a)),
                v=int(rng.choice(cluster_b)),
                weight=3.0,
            )
            for _ in range(200)
        ]
        dynamic.apply_edge_updates(updates)
        report = lazy.refresh(dynamic)
        assert report.drift > 0.05
        assert report.refitted
        assert lazy.total_refits == 1

    def test_zero_threshold_always_refits(self, small_dynamic):
        dynamic, _ = small_dynamic
        lazy = LazySGLA(k=2, drift_threshold=0.0).fit(dynamic)
        dynamic.apply_edge_update(EdgeUpdate(view=0, u=0, v=2))
        report = lazy.refresh(dynamic)
        assert report.refitted

    def test_laplacian_shape(self, small_dynamic):
        dynamic, _ = small_dynamic
        lazy = LazySGLA(k=2).fit(dynamic)
        laplacian = lazy.laplacian(dynamic)
        assert laplacian.shape == (dynamic.n_nodes, dynamic.n_nodes)

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValidationError):
            LazySGLA(k=2, drift_threshold=-0.1)

    def test_weights_stay_on_simplex_through_stream(self, small_dynamic):
        dynamic, _ = small_dynamic
        lazy = LazySGLA(k=2, drift_threshold=0.02).fit(dynamic)
        rng = np.random.default_rng(1)
        for _ in range(5):
            updates = [
                EdgeUpdate(
                    view=int(rng.integers(2)),
                    u=int(rng.integers(80)),
                    v=int((rng.integers(79) + 1 + rng.integers(80)) % 80),
                )
                for _ in range(10)
            ]
            updates = [u for u in updates if u.u != u.v]
            dynamic.apply_edge_updates(updates)
            report = lazy.refresh(dynamic)
            assert np.all(report.weights >= -1e-12)
            assert report.weights.sum() == pytest.approx(1.0)
