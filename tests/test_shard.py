"""Tests for the process-sharded execution subsystem (DESIGN.md §10).

Covers the ISSUE's satellite checklist: end-to-end determinism (sharded
== serial bit-identical ``w*`` / labels for every ``shard_workers``
value), stats-merge correctness through the pipeline, worker-count edge
cases (0 / 1 / more workers than views), and crash recovery (a poisoned
shard raises one clean :class:`ShardError`, no hang, and the pool is
usable again afterwards).
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.fastpath import StackedLaplacians
from repro.core.laplacian import build_view_laplacians
from repro.core.pipeline import cluster_mvag
from repro.core.sgla import SGLAConfig
from repro.datasets.generator import generate_mvag
from repro.dynamic import DynamicMVAG
from repro.neighbors import NeighborStats
from repro.shard import (
    ArraySpec,
    ShardBackend,
    ShardContext,
    ShardError,
    attached,
    create_segment,
    inline_spec,
    register_backend,
    shard_objective_batch,
    shard_view_laplacians,
    unregister_backend,
)
from repro.shard.registry import available_backends, get_backend
from repro.solvers import SolverContext
from repro.utils.errors import ValidationError

WORKER_COUNTS = (1, 2, 3, 5)


@pytest.fixture(scope="module")
def shard_mvag():
    """Well-separated clusters: label output is stable under fp noise."""
    return generate_mvag(
        n_nodes=300,
        n_clusters=3,
        graph_view_strengths=[0.9, 0.2],
        attribute_view_dims=[24, 16],
        attribute_view_signals=[0.8, 0.7],
        seed=11,
    )


def _forced(workers: int, **overrides) -> ShardContext:
    """A context that dispatches even on tiny test fixtures."""
    params = dict(min_items=0, min_bytes=0)
    params.update(overrides)
    return ShardContext(workers=workers, **params)


# --------------------------------------------------------------------- #
# Worker-side helpers (module-level: picklable by reference)
# --------------------------------------------------------------------- #


def _square(item, common):
    return item * item + (common or {}).get("offset", 0)


def _poison(item, common):
    if item == "bad":
        raise ValueError("poisoned payload")
    return item


def _hang(item, common):  # pragma: no cover - killed mid-sleep
    import time

    time.sleep(300)
    return item


def _read_spec(item, common):
    with attached(item) as array:
        return float(np.sum(array))


# --------------------------------------------------------------------- #
# Shared-memory transfer
# --------------------------------------------------------------------- #


class TestSharedMemory:
    def test_roundtrip(self):
        array = np.arange(24, dtype=np.float64).reshape(4, 6)
        segment, spec = create_segment(array)
        try:
            with attached(spec) as view:
                assert np.array_equal(view, array)
        finally:
            segment.close()
            segment.unlink()

    def test_zero_size_array(self):
        array = np.zeros((0, 5))
        segment, spec = create_segment(array)
        try:
            with attached(spec) as view:
                assert view.shape == (0, 5)
        finally:
            segment.close()
            segment.unlink()

    def test_inline_spec_identity(self):
        array = np.ones(7)
        spec = inline_spec(array)
        with attached(spec) as view:
            assert np.array_equal(view, array)

    def test_empty_spec_rejected(self):
        with pytest.raises(ValidationError):
            with attached(ArraySpec(shape=(2,), dtype="float64")):
                pass  # pragma: no cover

    def test_cross_process_read(self):
        array = np.arange(1000, dtype=np.float64)
        with _forced(2) as shard:
            specs = [shard.share(array), shard.share(2 * array)]
            sums = shard.run(_read_spec, specs, dispatch=True)
        assert sums == [float(array.sum()), float(2 * array.sum())]


# --------------------------------------------------------------------- #
# Context policy + registry
# --------------------------------------------------------------------- #


class TestContextPolicy:
    def test_serial_fallback_thresholds(self):
        shard = ShardContext(workers=4, min_items=3, min_bytes=100)
        assert not shard.should_dispatch(2, payload_bytes=1000)  # too few
        assert not shard.should_dispatch(4, payload_bytes=10)  # too small
        assert shard.should_dispatch(4, payload_bytes=1000)
        shard.close()

    def test_workers_leq_one_never_dispatches(self):
        for workers in (0, 1):
            shard = ShardContext(workers=workers, min_items=0, min_bytes=0)
            assert not shard.active
            assert not shard.should_dispatch(100, payload_bytes=1 << 30)
            assert shard.run(_square, [1, 2, 3]) == [1, 4, 9]
            assert shard.stats.serial_dispatches == 1
            assert shard.stats.dispatches == 0
            shard.close()

    def test_serial_backend_forces_in_process(self):
        shard = ShardContext(workers=4, backend="serial", min_items=0,
                             min_bytes=0)
        assert not shard.active
        assert shard.run(_square, list(range(5))) == [0, 1, 4, 9, 16]
        shard.close()

    def test_process_dispatch_ordering_and_common(self):
        with _forced(3) as shard:
            out = shard.run(
                _square, list(range(11)), common={"offset": 5},
                dispatch=True,
            )
        assert out == [i * i + 5 for i in range(11)]

    def test_closed_context_rejects_executor(self):
        shard = _forced(2)
        shard.close()
        with pytest.raises(ValidationError):
            shard.executor()
        shard.close()  # idempotent

    def test_config_make_shard(self):
        assert SGLAConfig().make_shard() is None
        assert SGLAConfig(shard_workers=0).make_shard() is None
        shard = SGLAConfig(shard_workers=2, shard_backend="serial").make_shard()
        assert shard.workers == 2 and shard.backend == "serial"
        shard.close()
        with pytest.raises(ValidationError):
            SGLAConfig(shard_workers=-1)

    def test_registry_errors(self):
        assert set(available_backends()) >= {"process", "serial"}
        with pytest.raises(ValidationError):
            get_backend("no-such-backend")
        with pytest.raises(ValidationError):
            register_backend(get_backend("serial"))  # duplicate name

    def test_registry_plugin_roundtrip(self):
        class _Echo(ShardBackend):
            name = "echo-test"

            def run(self, func, items, common, plan, context):
                return [func(item, common) for item in items]

        try:
            register_backend(_Echo())
            shard = ShardContext(workers=2, backend="echo-test",
                                 min_items=0, min_bytes=0)
            assert shard.run(_square, [3], dispatch=True) == [9]
            shard.close()
        finally:
            unregister_backend("echo-test")


# --------------------------------------------------------------------- #
# Crash recovery
# --------------------------------------------------------------------- #


class TestCrashRecovery:
    def test_poisoned_shard_raises_clean_error(self):
        with _forced(2) as shard:
            with pytest.raises(ShardError, match="poisoned payload"):
                shard.run(_poison, ["ok", "bad", "ok"], dispatch=True)
            assert shard.stats.failures == 1

    def test_pool_usable_after_poison(self):
        with _forced(2) as shard:
            with pytest.raises(ShardError):
                shard.run(_poison, ["bad", "ok"], dispatch=True)
            # Fresh pool, clean dispatch — no lingering poison, no hang.
            assert shard.run(_square, [2, 3, 4], dispatch=True) == [4, 9, 16]

    def test_serial_path_propagates_original_error(self):
        """In-process execution keeps the original exception type."""
        shard = ShardContext(workers=1)
        with pytest.raises(ValueError, match="poisoned payload"):
            shard.run(_poison, ["bad"])
        shard.close()

    def test_unpicklable_task_surfaces_as_shard_error(self):
        def local_closure(item, common):  # pragma: no cover - never runs
            return item

        with _forced(2) as shard:
            with pytest.raises(ShardError):
                shard.run(local_closure, [1, 2], dispatch=True)

    def test_timeout_kills_hung_worker_no_shutdown_hang(self):
        """A hung task times out cleanly AND its worker is killed, so
        neither this dispatch nor interpreter shutdown can hang."""
        with _forced(2, timeout=1.0) as shard:
            with pytest.raises(ShardError, match="timed out"):
                shard.run(_hang, [1, 2], dispatch=True)
            assert shard.stats.failures == 1
            # Fresh pool after the kill; dispatch works again.
            assert shard.run(_square, [5, 6], dispatch=True) == [25, 36]


# --------------------------------------------------------------------- #
# Sharded view builds
# --------------------------------------------------------------------- #


class TestShardedViewBuilds:
    def test_bit_identical_for_every_worker_count(self, shard_mvag):
        reference = build_view_laplacians(shard_mvag, knn_k=8)
        for workers in WORKER_COUNTS:
            with _forced(workers) as shard:
                laplacians = shard_view_laplacians(
                    shard_mvag, shard, knn_k=8
                )
            assert len(laplacians) == len(reference)
            for ours, theirs in zip(laplacians, reference):
                assert (ours != theirs).nnz == 0, f"workers={workers}"

    def test_neighbor_stats_match_in_process(self, shard_mvag):
        reference = NeighborStats()
        build_view_laplacians(shard_mvag, knn_k=8, neighbor_stats=reference)
        sharded = NeighborStats()
        with _forced(3) as shard:
            build_view_laplacians(
                shard_mvag, knn_k=8, neighbor_stats=sharded, shard=shard
            )
        assert sharded.builds == reference.builds
        assert sharded.nodes == reference.nodes
        assert sharded.candidate_pairs == reference.candidate_pairs
        assert sharded.exhaustive_pairs == reference.exhaustive_pairs
        assert sharded.by_backend == reference.by_backend

    def test_sparse_attribute_views(self):
        rng = np.random.default_rng(5)
        dense = rng.random((120, 30)) * (rng.random((120, 30)) < 0.2)
        mvag = generate_mvag(
            n_nodes=120, n_clusters=2, seed=7,
            graph_view_strengths=[0.8], attribute_view_dims=[12],
        )
        from repro.core.mvag import MVAG

        sparse_mvag = MVAG(
            graph_views=mvag.graph_views,
            attribute_views=[mvag.attribute_views[0], sp.csr_matrix(dense)],
            labels=mvag.labels,
        )
        reference = build_view_laplacians(sparse_mvag, knn_k=6)
        with _forced(2) as shard:
            laplacians = shard_view_laplacians(sparse_mvag, shard, knn_k=6)
        for ours, theirs in zip(laplacians, reference):
            assert (ours != theirs).nnz == 0


# --------------------------------------------------------------------- #
# Sharded weight-batch eigensolves
# --------------------------------------------------------------------- #


class TestShardedObjectiveBatch:
    @pytest.fixture(scope="class")
    def stack(self, shard_mvag):
        return StackedLaplacians(build_view_laplacians(shard_mvag, knn_k=8))

    def test_bit_identical_across_worker_counts(self, stack):
        rows = np.array([
            [0.25, 0.25, 0.25, 0.25],
            [0.7, 0.1, 0.1, 0.1],
            [0.1, 0.7, 0.1, 0.1],
            [0.1, 0.1, 0.1, 0.7],
            [0.4, 0.3, 0.2, 0.1],
        ])
        outputs = {}
        for workers in WORKER_COUNTS:
            solver = SolverContext(method="lanczos", seed=0)
            with _forced(workers) as shard:
                values = shard_objective_batch(
                    stack, rows, 4, "lanczos", solver, shard
                )
            outputs[workers] = (values, solver.stats)
        reference_values, reference_stats = outputs[1]
        for workers in WORKER_COUNTS[1:]:
            values, stats = outputs[workers]
            for ours, theirs in zip(values, reference_values):
                assert np.array_equal(ours, theirs), f"workers={workers}"
            assert stats.solves == reference_stats.solves
            assert stats.matvecs == reference_stats.matvecs

    def test_matches_threaded_batch_backend(self, stack):
        """The scheme is the ``batch`` backend's, at process level."""
        rows = np.array([
            [0.25, 0.25, 0.25, 0.25],
            [0.6, 0.2, 0.1, 0.1],
            [0.1, 0.2, 0.6, 0.1],
        ])
        batch_solver = SolverContext(method="batch", seed=0)
        matrices = [
            stack.with_data(row) for row in stack.combine_many(rows)
        ]
        reference = [
            values
            for values, _ in batch_solver.solve_many(
                matrices, 4, want_vectors=False
            )
        ]
        solver = SolverContext(method="lanczos", seed=0)
        with _forced(2) as shard:
            values = shard_objective_batch(
                stack, rows, 4, "lanczos", solver, shard
            )
        for ours, theirs in zip(values, reference):
            assert np.array_equal(ours, theirs)

    def test_dense_method_matches_in_process(self, stack):
        # The in-process dense path computes values only (eigvals_only
        # eigh); the sharded seed solve must not request Ritz vectors
        # for it — eigh-with-vectors rounds its eigenvalues differently
        # at the last ulp, which silently broke shard-vs-serial bit
        # identity for every profile small enough to resolve to "dense".
        rows = np.array([
            [0.25, 0.25, 0.25, 0.25],
            [0.6, 0.2, 0.1, 0.1],
            [0.1, 0.2, 0.6, 0.1],
        ])
        reference_solver = SolverContext(method="dense", seed=0)
        reference = [
            reference_solver.eigenvalues(
                stack.with_data(row), 4, method="dense", warm=False
            )
            for row in stack.combine_many(rows)
        ]
        solver = SolverContext(method="dense", seed=0)
        with _forced(2) as shard:
            values = shard_objective_batch(
                stack, rows, 4, "dense", solver, shard
            )
        for ours, theirs in zip(values, reference):
            assert np.array_equal(ours, theirs)

    def test_warm_start_disabled_solves_cold(self, stack):
        """warm_start=False must mean cold solves under sharding too —
        bitwise equal to the in-process cold chain, mirroring the batch
        backend's ``share_seed=warm_start`` rule (no silent re-seeding
        that would corrupt warm-start ablations)."""
        rows = np.array([
            [0.25, 0.25, 0.25, 0.25],
            [0.55, 0.15, 0.15, 0.15],
            [0.15, 0.55, 0.15, 0.15],
        ])
        reference = SolverContext(
            method="lanczos", seed=0, warm_start=False
        )
        cold = [
            reference.eigenvalues(stack.with_data(row), 4)
            for row in stack.combine_many(rows)
        ]
        for workers in (1, 3):
            solver = SolverContext(
                method="lanczos", seed=0, warm_start=False
            )
            with _forced(workers) as shard:
                values = shard_objective_batch(
                    stack, rows, 4, "lanczos", solver, shard
                )
            for ours, theirs in zip(values, cold):
                assert np.array_equal(ours, theirs), f"workers={workers}"
            assert solver.stats.warm_solves == 0
            assert solver.stats.cold_solves == len(rows)

    def test_solver_stats_account_shard_solves(self, stack):
        rows = np.array([[0.25, 0.25, 0.25, 0.25], [0.4, 0.2, 0.2, 0.2]])
        solver = SolverContext(method="lanczos", seed=0)
        with _forced(2) as shard:
            shard_objective_batch(stack, rows, 4, "lanczos", solver, shard)
        assert solver.stats.solves == 2
        assert solver.stats.batched_solves == 2
        assert set(solver.stats.by_backend) == {"shard[lanczos]"}
        assert solver.stats.matvecs > 0


# --------------------------------------------------------------------- #
# End-to-end pipeline determinism + edge cases
# --------------------------------------------------------------------- #


class TestPipelineDeterminism:
    @pytest.fixture(scope="class")
    def sharded_outputs(self, shard_mvag):
        outputs = {}
        for workers in WORKER_COUNTS:
            with _forced(workers) as shard:
                outputs[workers] = cluster_mvag(
                    shard_mvag, method="sgla+", config=SGLAConfig(),
                    shard=shard,
                )
        return outputs

    def test_w_star_and_labels_bit_identical(self, sharded_outputs):
        reference = sharded_outputs[1]
        for workers, output in sharded_outputs.items():
            assert np.array_equal(
                output.integration.weights, reference.integration.weights
            ), f"w* differs at shard_workers={workers}"
            assert np.array_equal(output.labels, reference.labels), (
                f"labels differ at shard_workers={workers}"
            )

    def test_small_profile_dense_path_bit_identical(self):
        # rm_small (n = 91) resolves the eigen backend to "dense"; seed 1
        # historically drifted one ulp under forced dispatch because the
        # sharded seed solve requested vectors the in-process dense path
        # never computes.
        from repro.datasets.profiles import load_profile_mvag

        mvag = load_profile_mvag("rm_small", seed=1)
        direct = cluster_mvag(mvag, config=SGLAConfig(), seed=1)
        with _forced(2) as shard:
            sharded = cluster_mvag(
                mvag, config=SGLAConfig(), seed=1, shard=shard
            )
        assert np.array_equal(direct.labels, sharded.labels)
        assert (
            direct.integration.objective_value
            == sharded.integration.objective_value
        )

    def test_serial_backend_matches_process(self, shard_mvag, sharded_outputs):
        with ShardContext(
            workers=3, backend="serial", min_items=0, min_bytes=0
        ) as shard:
            output = cluster_mvag(
                shard_mvag, method="sgla+", config=SGLAConfig(), shard=shard
            )
        assert np.array_equal(
            output.integration.weights,
            sharded_outputs[1].integration.weights,
        )
        assert np.array_equal(output.labels, sharded_outputs[1].labels)

    def test_zero_workers_is_the_plain_pipeline(self, shard_mvag):
        """shard_workers=0 disables sharding entirely."""
        plain = cluster_mvag(shard_mvag, method="sgla+", config=SGLAConfig())
        disabled = cluster_mvag(
            shard_mvag, method="sgla+", config=SGLAConfig(shard_workers=0)
        )
        assert np.array_equal(
            plain.integration.weights, disabled.integration.weights
        )
        assert np.array_equal(plain.labels, disabled.labels)

    def test_more_workers_than_views(self, shard_mvag, sharded_outputs):
        """Workers beyond the item count are planned away, not wasted."""
        with _forced(16) as shard:
            output = cluster_mvag(
                shard_mvag, method="sgla+", config=SGLAConfig(), shard=shard
            )
            assert shard.stats.dispatches > 0
        assert np.array_equal(
            output.integration.weights,
            sharded_outputs[1].integration.weights,
        )
        assert np.array_equal(output.labels, sharded_outputs[1].labels)

    def test_plain_vs_sharded_agreement(self, shard_mvag, sharded_outputs):
        """Different execution scheme, same optimum (to solver noise)."""
        plain = cluster_mvag(shard_mvag, method="sgla+", config=SGLAConfig())
        delta = np.max(np.abs(
            plain.integration.weights
            - sharded_outputs[1].integration.weights
        ))
        assert delta < 1e-6
        assert np.array_equal(plain.labels, sharded_outputs[1].labels)

    def test_sgla_plain_solver_sharded_builds(self, shard_mvag):
        """SGLA (sequential optimizer) shards its view builds only."""
        with _forced(2) as shard:
            output = cluster_mvag(
                shard_mvag, method="sgla", config=SGLAConfig(), shard=shard
            )
            assert shard.stats.dispatches >= 1  # the view-build dispatch
        plain = cluster_mvag(shard_mvag, method="sgla", config=SGLAConfig())
        assert np.array_equal(
            output.integration.weights, plain.integration.weights
        )
        assert np.array_equal(output.labels, plain.labels)


# --------------------------------------------------------------------- #
# Streaming (DynamicMVAG)
# --------------------------------------------------------------------- #


class TestDynamicSharding:
    def test_sharded_refresh_bit_identical(self, shard_mvag):
        reference = DynamicMVAG(shard_mvag, knn_k=8)
        with _forced(2) as shard:
            dynamic = DynamicMVAG(shard_mvag, knn_k=8, shard=shard)
            for ours, theirs in zip(
                dynamic.view_laplacians(), reference.view_laplacians()
            ):
                assert (ours != theirs).nnz == 0
            assert shard.stats.dispatches == 1

            rng = np.random.default_rng(3)
            for view in (0, 1):
                row = rng.standard_normal(
                    shard_mvag.attribute_views[view].shape[1]
                )
                reference.update_attributes(view, 7, row)
                dynamic.update_attributes(view, 7, row)
            for ours, theirs in zip(
                dynamic.view_laplacians(), reference.view_laplacians()
            ):
                assert (ours != theirs).nnz == 0
            assert shard.stats.dispatches == 2
            assert dynamic.neighbor_stats.builds == (
                reference.neighbor_stats.builds
            )

    def test_owned_shard_closed_by_close(self, shard_mvag):
        dynamic = DynamicMVAG(
            shard_mvag, knn_k=8, shard_workers=2, shard_backend="serial"
        )
        assert dynamic._shard is not None
        dynamic.close()
        assert dynamic._shard is None
        dynamic.close()  # idempotent

    def test_single_dirty_view_stays_in_process(self, shard_mvag):
        with _forced(2) as shard:
            dynamic = DynamicMVAG(shard_mvag, knn_k=8, shard=shard)
            dynamic.view_laplacians()
            dispatches = shard.stats.dispatches
            row = np.random.default_rng(9).standard_normal(
                shard_mvag.attribute_views[0].shape[1]
            )
            dynamic.update_attributes(0, 3, row)
            dynamic.view_laplacians()
            # one dirty view -> nothing to fan out
            assert shard.stats.dispatches == dispatches
