"""Unit tests for the deterministic fault-injection layer (DESIGN.md §11)."""

from __future__ import annotations

import pickle
import time

import pytest

from repro.shard import FAULT_KINDS, FaultInjected, FaultPlan, plan_from_dict
from repro.shard.faults import FaultedTask
from repro.utils.errors import ValidationError


def _echo(item, common):
    return item


class TestFaultPlanValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValidationError, match="crash_rate"):
            FaultPlan(crash_rate=1.5)
        with pytest.raises(ValidationError, match="drop_rate"):
            FaultPlan(drop_rate=-0.1)

    def test_rates_must_sum_to_at_most_one(self):
        with pytest.raises(ValidationError, match="sum"):
            FaultPlan(crash_rate=0.6, hang_rate=0.6)

    def test_durations_nonnegative(self):
        with pytest.raises(ValidationError, match="durations"):
            FaultPlan(hang_seconds=-1.0)

    def test_plan_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValidationError, match="unknown"):
            plan_from_dict({"crash_rate": 0.1, "explode_rate": 0.5})
        assert plan_from_dict(None) is None
        plan = plan_from_dict({"seed": 7, "crash_rate": 0.25})
        assert plan.seed == 7 and plan.crash_rate == 0.25


class TestFaultPlanDecide:
    def test_pure_function_of_seed_key_attempt(self):
        plan = FaultPlan(seed=3, crash_rate=0.3, drop_rate=0.3)
        decisions = [plan.decide(key, 0) for key in range(200)]
        again = [plan.decide(key, 0) for key in range(200)]
        assert decisions == again
        # The schedule survives pickling (it crosses process borders).
        clone = pickle.loads(pickle.dumps(plan))
        assert decisions == [clone.decide(key, 0) for key in range(200)]

    def test_rates_are_hit_approximately(self):
        plan = FaultPlan(seed=0, crash_rate=0.2, slow_rate=0.2)
        decisions = [plan.decide(key, 0) for key in range(4000)]
        crash = decisions.count("crash") / len(decisions)
        slow = decisions.count("slow") / len(decisions)
        clean = decisions.count(None) / len(decisions)
        assert crash == pytest.approx(0.2, abs=0.03)
        assert slow == pytest.approx(0.2, abs=0.03)
        assert clean == pytest.approx(0.6, abs=0.04)

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, crash_rate=0.5)
        b = FaultPlan(seed=2, crash_rate=0.5)
        assert [a.decide(k, 0) for k in range(100)] != [
            b.decide(k, 0) for k in range(100)
        ]

    def test_faults_expire_after_max_faulted_attempts(self):
        plan = FaultPlan(seed=0, crash_rate=1.0)
        assert plan.decide(42, 0) == "crash"
        assert plan.decide(42, 1) is None  # retry always has a clean path
        stressor = FaultPlan(seed=0, crash_rate=1.0, max_faulted_attempts=3)
        assert stressor.decide(42, 2) == "crash"
        assert stressor.decide(42, 3) is None

    def test_all_kinds_reachable(self):
        plan = FaultPlan(
            seed=0, crash_rate=0.2, hang_rate=0.2, slow_rate=0.2,
            corrupt_rate=0.2, drop_rate=0.2,
        )
        seen = {plan.decide(key, 0) for key in range(500)}
        assert set(FAULT_KINDS) <= seen


class TestFaultedTask:
    def test_crash_and_drop_raise_before_compute(self):
        calls = []

        def _recording(item, common):
            calls.append(item)
            return item

        plan = FaultPlan(seed=0, crash_rate=1.0)
        task = FaultedTask(_recording, plan)
        with pytest.raises(FaultInjected) as excinfo:
            task((7, 0, "payload"), None)
        assert excinfo.value.kind == "crash"
        assert calls == []  # the worker died before doing the work

    def test_corrupt_raises_after_compute(self):
        calls = []

        def _recording(item, common):
            calls.append(item)
            return item

        plan = FaultPlan(seed=0, corrupt_rate=1.0)
        with pytest.raises(FaultInjected) as excinfo:
            FaultedTask(_recording, plan)((7, 0, "payload"), None)
        assert excinfo.value.kind == "corrupt"
        assert calls == ["payload"]  # the result was damaged, not the task

    def test_slow_answers_correctly(self):
        plan = FaultPlan(seed=0, slow_rate=1.0, slow_seconds=0.01)
        started = time.monotonic()
        assert FaultedTask(_echo, plan)((7, 0, "ok"), None) == "ok"
        assert time.monotonic() - started >= 0.01

    def test_clean_attempt_passes_through(self):
        plan = FaultPlan(seed=0, crash_rate=1.0)
        assert FaultedTask(_echo, plan)((7, 1, "ok"), None) == "ok"

    def test_fault_injected_pickles(self):
        error = pickle.loads(pickle.dumps(FaultInjected("hang", 99)))
        assert error.kind == "hang" and error.task_key == 99
