"""Gradient checks and training tests for the nn substrate."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.nn.activations import (
    relu,
    relu_backward,
    sigmoid,
    sigmoid_backward,
    tanh,
    tanh_backward,
)
from repro.nn.autoencoder import GraphAutoEncoder, renormalized_adjacency
from repro.nn.layers import DenseLayer, GCNLayer
from repro.nn.losses import mse_matrix, weighted_bce_with_logits_matrix
from repro.nn.optimizers import SGD, Adam
from repro.utils.errors import ValidationError


def numeric_gradient(func, array, step=1e-6):
    grad = np.zeros_like(array)
    flat = array.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + step
        plus = func()
        flat[i] = original - step
        minus = func()
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * step)
    return grad


class TestActivations:
    def test_relu_values(self):
        np.testing.assert_allclose(relu(np.array([-1.0, 2.0])), [0.0, 2.0])

    def test_relu_gradient(self):
        x = np.array([-1.0, 0.5])
        grad = relu_backward(np.ones(2), x)
        np.testing.assert_allclose(grad, [0.0, 1.0])

    def test_sigmoid_stable_extremes(self):
        values = sigmoid(np.array([-1000.0, 0.0, 1000.0]))
        np.testing.assert_allclose(values, [0.0, 0.5, 1.0], atol=1e-12)

    def test_sigmoid_gradient_matches_numeric(self):
        x = np.linspace(-2, 2, 7)
        out = sigmoid(x)
        analytic = sigmoid_backward(np.ones_like(x), out)
        numeric = (sigmoid(x + 1e-6) - sigmoid(x - 1e-6)) / 2e-6
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_tanh_gradient_matches_numeric(self):
        x = np.linspace(-2, 2, 7)
        analytic = tanh_backward(np.ones_like(x), tanh(x))
        numeric = (tanh(x + 1e-6) - tanh(x - 1e-6)) / 2e-6
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)


class TestDenseLayer:
    def test_forward_shape(self):
        layer = DenseLayer(4, 3, seed=0)
        assert layer.forward(np.ones((5, 4))).shape == (5, 3)

    def test_weight_gradient_check(self):
        rng = np.random.default_rng(0)
        layer = DenseLayer(4, 3, seed=1)
        x = rng.standard_normal((6, 4))
        target = rng.standard_normal((6, 3))

        def loss():
            out = layer.forward(x)
            return 0.5 * float(np.sum((out - target) ** 2))

        out = layer.forward(x)
        layer.zero_grad()
        layer.backward(out - target)
        numeric = numeric_gradient(loss, layer.params["W"])
        np.testing.assert_allclose(layer.grads["W"], numeric, atol=1e-5)

    def test_input_gradient_check(self):
        rng = np.random.default_rng(1)
        layer = DenseLayer(3, 2, seed=2)
        x = rng.standard_normal((4, 3))
        target = rng.standard_normal((4, 2))

        def loss():
            return 0.5 * float(np.sum((layer.forward(x) - target) ** 2))

        out = layer.forward(x)
        layer.zero_grad()
        grad_in = layer.backward(out - target)
        numeric = numeric_gradient(loss, x)
        np.testing.assert_allclose(grad_in, numeric, atol=1e-5)

    def test_backward_before_forward(self):
        with pytest.raises(ValidationError):
            DenseLayer(2, 2).backward(np.ones((1, 2)))


class TestGCNLayer:
    def test_gradient_check(self):
        rng = np.random.default_rng(2)
        n, d_in, d_out = 6, 4, 3
        adjacency = sp.csr_matrix((rng.random((n, n)) < 0.4).astype(float))
        a_hat = renormalized_adjacency(adjacency.maximum(adjacency.T))
        layer = GCNLayer(d_in, d_out, seed=3)
        x = rng.standard_normal((n, d_in))
        target = rng.standard_normal((n, d_out))

        def loss():
            return 0.5 * float(np.sum((layer.forward(a_hat, x) - target) ** 2))

        out = layer.forward(a_hat, x)
        layer.zero_grad()
        grad_in = layer.backward(out - target)
        numeric_w = numeric_gradient(loss, layer.params["W"])
        np.testing.assert_allclose(layer.grads["W"], numeric_w, atol=1e-5)
        numeric_x = numeric_gradient(loss, x)
        np.testing.assert_allclose(grad_in, numeric_x, atol=1e-5)


class TestLosses:
    def test_bce_gradient_check(self):
        rng = np.random.default_rng(3)
        code = rng.standard_normal((5, 3)) * 0.5
        target = (rng.random((5, 5)) < 0.4).astype(float)
        target = np.maximum(target, target.T)

        def loss():
            value, _ = weighted_bce_with_logits_matrix(code, target, 2.0)
            return value

        _, analytic = weighted_bce_with_logits_matrix(code, target, 2.0)
        numeric = numeric_gradient(loss, code)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_mse_gradient_check(self):
        rng = np.random.default_rng(4)
        code = rng.standard_normal((4, 2))
        target = rng.standard_normal((4, 4))
        target = 0.5 * (target + target.T)

        def loss():
            value, _ = mse_matrix(code, target)
            return value

        _, analytic = mse_matrix(code, target)
        numeric = numeric_gradient(loss, code)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)


class TestOptimizers:
    def _quadratic_layer(self):
        layer = DenseLayer(1, 1, seed=0)
        layer.params["W"][...] = 5.0
        layer.params["b"][...] = -3.0
        return layer

    def test_sgd_converges_on_quadratic(self):
        layer = self._quadratic_layer()
        optimizer = SGD([layer], lr=0.1)
        for _ in range(200):
            optimizer.zero_grad()
            layer.grads["W"] += layer.params["W"]  # grad of 0.5 W^2
            layer.grads["b"] += layer.params["b"]
            optimizer.step()
        assert abs(layer.params["W"][0, 0]) < 1e-4

    def test_adam_converges_on_quadratic(self):
        layer = self._quadratic_layer()
        optimizer = Adam([layer], lr=0.3)
        for _ in range(300):
            optimizer.zero_grad()
            layer.grads["W"] += layer.params["W"]
            layer.grads["b"] += layer.params["b"]
            optimizer.step()
        assert abs(layer.params["W"][0, 0]) < 1e-3

    def test_invalid_lr(self):
        with pytest.raises(ValidationError):
            SGD([], lr=0.0)
        with pytest.raises(ValidationError):
            Adam([], lr=-1.0)


class TestAutoEncoder:
    def test_loss_decreases(self):
        rng = np.random.default_rng(5)
        n = 30
        labels = np.repeat([0, 1], n // 2)
        dense = (labels[:, None] == labels[None, :]).astype(float)
        dense *= (rng.random((n, n)) < 0.6)
        dense = np.maximum(dense, dense.T)
        np.fill_diagonal(dense, 1.0)
        adjacency = sp.csr_matrix(dense)
        a_hat = renormalized_adjacency(adjacency)
        features = rng.standard_normal((n, 8))
        model = GraphAutoEncoder(8, hidden_dim=16, code_dim=4, epochs=40,
                                 lr=1e-2, seed=0)
        model.fit(a_hat, features, [dense])
        assert model.loss_history[-1] < model.loss_history[0]

    def test_code_shape(self):
        rng = np.random.default_rng(6)
        n = 20
        adjacency = sp.csr_matrix((rng.random((n, n)) < 0.3).astype(float))
        a_hat = renormalized_adjacency(adjacency.maximum(adjacency.T))
        features = rng.standard_normal((n, 5))
        model = GraphAutoEncoder(5, hidden_dim=8, code_dim=3, epochs=2, seed=0)
        target = np.eye(n)
        model.fit(a_hat, features, [target])
        assert model.transform(a_hat, features).shape == (n, 3)

    def test_needs_targets(self):
        model = GraphAutoEncoder(4, epochs=1)
        with pytest.raises(ValidationError):
            model.fit(sp.identity(3, format="csr"), np.ones((3, 4)), [])

    def test_renormalized_adjacency_rows(self):
        adjacency = sp.csr_matrix(np.ones((4, 4)) - np.eye(4))
        a_hat = renormalized_adjacency(adjacency)
        values = np.linalg.eigvalsh(a_hat.toarray())
        assert values.max() <= 1.0 + 1e-9
