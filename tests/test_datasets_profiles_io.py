"""Tests for dataset profiles, the running example, and npz persistence."""

import numpy as np
import pytest

from repro.datasets.io import load_mvag, save_mvag
from repro.datasets.profiles import (
    PROFILES,
    dataset_profile,
    list_profiles,
    load_profile_mvag,
)
from repro.datasets.running_example import running_example_mvag
from repro.utils.errors import ValidationError

PAPER_DATASETS = [
    "rm", "yelp", "imdb", "dblp",
    "amazon_photos", "amazon_computers", "mag_eng", "mag_phy",
]


class TestProfiles:
    def test_all_paper_datasets_present(self):
        names = list_profiles(include_small=False)
        assert names == PAPER_DATASETS

    def test_small_variants_exist(self):
        for name in PAPER_DATASETS:
            assert f"{name}_small" in PROFILES

    def test_table2_shapes(self):
        """View structure must match Table II (r, p, q, k per dataset)."""
        expectations = {
            # name: (r, n_graph_views, n_attribute_views)
            "rm": (11, 10, 1),
            "yelp": (3, 2, 1),
            "imdb": (3, 2, 1),
            "dblp": (4, 3, 1),
            "amazon_photos": (3, 1, 2),
            "amazon_computers": (3, 1, 2),
            "mag_eng": (4, 2, 2),
            "mag_phy": (4, 2, 2),
        }
        for name, (r, p, q) in expectations.items():
            profile = dataset_profile(name)
            assert profile.r == r, name
            assert len(profile.graph_views) == p, name
            assert len(profile.attribute_views) == q, name

    def test_paper_n_recorded(self):
        assert dataset_profile("mag_phy").paper_n == 2353996
        assert dataset_profile("rm").paper_n == 91

    def test_rm_not_scaled(self):
        assert dataset_profile("rm").n == 91

    def test_mag_scaled_down(self):
        assert dataset_profile("mag_eng").n < dataset_profile("mag_eng").paper_n

    def test_mag_train_fraction_one_percent(self):
        assert dataset_profile("mag_eng").train_fraction == 0.01
        assert dataset_profile("mag_phy").train_fraction == 0.01

    def test_unknown_profile(self):
        with pytest.raises(ValidationError):
            dataset_profile("imagenet")

    def test_load_small_profile(self):
        mvag = load_profile_mvag("yelp_small", seed=0)
        profile = dataset_profile("yelp_small")
        assert mvag.n_nodes == profile.n
        assert mvag.n_views == profile.r
        assert mvag.n_classes == profile.k

    def test_load_deterministic(self):
        a = load_profile_mvag("rm", seed=1)
        b = load_profile_mvag("rm", seed=1)
        np.testing.assert_array_equal(a.labels, b.labels)


class TestRunningExample:
    def test_structure(self):
        mvag = running_example_mvag()
        assert mvag.n_nodes == 8
        assert mvag.n_views == 2
        assert mvag.n_classes == 2

    def test_c2_clique_in_both_views(self):
        mvag = running_example_mvag()
        for adjacency in mvag.graph_views:
            block = adjacency[4:, 4:].toarray()
            assert block.sum() == 12  # complete K4 (6 edges, symmetric)

    def test_c1_split_across_views(self):
        """Neither view alone contains all of C1's internal edges."""
        mvag = running_example_mvag()
        internal_edges = [
            adjacency[:4, :4].nnz // 2 for adjacency in mvag.graph_views
        ]
        union = (
            (mvag.graph_views[0] + mvag.graph_views[1])[:4, :4].nnz // 2
        )
        assert all(count < union for count in internal_edges)

    def test_interior_weights_optimal(self):
        """The Fig. 2 narrative: the objective is minimized strictly inside
        the weight simplex, not at either single-view extreme."""
        from repro.core.laplacian import build_view_laplacians
        from repro.core.objective import SpectralObjective

        mvag = running_example_mvag()
        laplacians = build_view_laplacians(mvag)
        objective = SpectralObjective(laplacians, k=2, gamma=0.0)
        values = {
            w1: objective([w1, 1.0 - w1])
            for w1 in [0.0, 0.2, 0.4, 0.5, 0.6, 0.8, 1.0]
        }
        interior_best = min(values[w] for w in (0.2, 0.4, 0.5, 0.6, 0.8))
        assert interior_best < values[0.0]
        assert interior_best < values[1.0]


class TestIO:
    def test_round_trip(self, tmp_path, easy_mvag):
        path = tmp_path / "mvag.npz"
        save_mvag(easy_mvag, path)
        loaded = load_mvag(path)
        assert loaded.n_nodes == easy_mvag.n_nodes
        assert loaded.n_views == easy_mvag.n_views
        assert loaded.name == easy_mvag.name
        np.testing.assert_array_equal(loaded.labels, easy_mvag.labels)
        for a, b in zip(loaded.graph_views, easy_mvag.graph_views):
            assert (a != b).nnz == 0

    def test_sparse_attributes_round_trip(self, tmp_path):
        from repro.datasets.generator import AttributeViewSpec, generate_mvag

        mvag = generate_mvag(
            40, 2,
            graph_view_strengths=[0.5],
            attribute_view_dims=[AttributeViewSpec(dim=16, kind="binary")],
            seed=0,
        )
        path = tmp_path / "sparse.npz"
        save_mvag(mvag, path)
        loaded = load_mvag(path)
        import scipy.sparse as sp

        assert sp.issparse(loaded.attribute_views[0])
        assert (
            loaded.attribute_views[0] != mvag.attribute_views[0]
        ).nnz == 0

    def test_unlabeled_round_trip(self, tmp_path):
        from repro.core.mvag import MVAG

        mvag = MVAG(graph_views=[np.eye(5)[::-1]])
        path = tmp_path / "unlabeled.npz"
        save_mvag(mvag, path)
        assert load_mvag(path).labels is None

    def test_missing_file(self, tmp_path):
        with pytest.raises(ValidationError):
            load_mvag(tmp_path / "nope.npz")
