"""Tests for repro.utils.sparse."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.errors import ShapeError, ValidationError
from repro.utils.sparse import (
    degree_vector,
    edge_count,
    ensure_csr,
    is_symmetric,
    remove_self_loops,
    row_normalize,
    sparse_identity,
    symmetrize,
    to_dense,
)


class TestEnsureCsr:
    def test_dense_input(self):
        matrix = ensure_csr(np.array([[1.0, 0.0], [0.0, 2.0]]))
        assert sp.issparse(matrix)
        assert matrix.format == "csr"
        assert matrix.dtype == np.float64

    def test_sparse_input_passthrough(self):
        original = sp.random(10, 10, density=0.3, format="csr", dtype=np.float64)
        assert ensure_csr(original) is original

    def test_coo_converted(self):
        coo = sp.random(5, 5, density=0.5, format="coo")
        assert ensure_csr(coo).format == "csr"

    def test_dtype_cast(self):
        matrix = sp.csr_matrix(np.eye(3, dtype=np.float32))
        assert ensure_csr(matrix).dtype == np.float64

    def test_rejects_1d(self):
        with pytest.raises(ShapeError):
            ensure_csr(np.arange(4))


class TestSymmetry:
    def test_is_symmetric_true(self):
        matrix = np.array([[0, 1.0], [1.0, 0]])
        assert is_symmetric(matrix)

    def test_is_symmetric_false(self):
        matrix = np.array([[0, 1.0], [0.0, 0]])
        assert not is_symmetric(matrix)

    def test_non_square_not_symmetric(self):
        assert not is_symmetric(np.ones((2, 3)))

    def test_symmetrize_max(self):
        matrix = sp.csr_matrix(np.array([[0, 2.0], [1.0, 0]]))
        result = to_dense(symmetrize(matrix, mode="max"))
        assert result[0, 1] == result[1, 0] == 2.0

    def test_symmetrize_mean(self):
        matrix = sp.csr_matrix(np.array([[0, 2.0], [1.0, 0]]))
        result = to_dense(symmetrize(matrix, mode="mean"))
        assert result[0, 1] == result[1, 0] == 1.5

    def test_symmetrize_or(self):
        matrix = sp.csr_matrix(np.array([[0, 2.0], [0.0, 0]]))
        result = to_dense(symmetrize(matrix, mode="or"))
        assert result[0, 1] == result[1, 0] == 2.0

    def test_symmetrize_bad_mode(self):
        with pytest.raises(ValidationError):
            symmetrize(np.eye(2), mode="bogus")

    def test_symmetrize_non_square(self):
        with pytest.raises(ShapeError):
            symmetrize(np.ones((2, 3)))

    @given(st.integers(min_value=2, max_value=12), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_symmetrize_always_symmetric(self, n, seed):
        rng = np.random.default_rng(seed)
        matrix = sp.random(n, n, density=0.4, random_state=rng.integers(1 << 30))
        for mode in ("max", "mean", "or"):
            assert is_symmetric(symmetrize(matrix, mode=mode))


class TestSelfLoops:
    def test_remove_self_loops(self):
        matrix = sp.csr_matrix(np.array([[5.0, 1.0], [1.0, 3.0]]))
        cleaned = remove_self_loops(matrix)
        assert cleaned.diagonal().sum() == 0.0
        assert cleaned[0, 1] == 1.0

    def test_original_untouched(self):
        matrix = sp.csr_matrix(np.eye(3))
        remove_self_loops(matrix)
        assert matrix.diagonal().sum() == 3.0


class TestRowNormalize:
    def test_rows_sum_to_one(self):
        matrix = row_normalize(np.array([[1.0, 3.0], [2.0, 2.0]]))
        np.testing.assert_allclose(
            np.asarray(matrix.sum(axis=1)).ravel(), [1.0, 1.0]
        )

    def test_zero_rows_preserved(self):
        matrix = row_normalize(np.array([[0.0, 0.0], [1.0, 1.0]]))
        assert np.asarray(matrix.sum(axis=1)).ravel()[0] == 0.0


class TestDegreesAndEdges:
    def test_degree_vector(self):
        adjacency = np.array([[0, 1.0, 2.0], [1.0, 0, 0], [2.0, 0, 0]])
        np.testing.assert_allclose(degree_vector(adjacency), [3.0, 1.0, 2.0])

    def test_edge_count_triangle(self):
        adjacency = np.ones((3, 3)) - np.eye(3)
        assert edge_count(adjacency) == 3

    def test_edge_count_ignores_diagonal(self):
        assert edge_count(np.eye(4)) == 0

    def test_sparse_identity(self):
        identity = sparse_identity(5)
        np.testing.assert_allclose(to_dense(identity), np.eye(5))

    def test_sparse_identity_negative(self):
        with pytest.raises(ValidationError):
            sparse_identity(-1)
