"""Tests for the pluggable neighbor-search subsystem (DESIGN.md §9)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.knn import knn_graph
from repro.core.laplacian import build_view_laplacians
from repro.core.pipeline import cluster_mvag
from repro.core.sgla import SGLA, SGLAConfig
from repro.datasets.generator import generate_mvag
from repro.datasets.running_example import running_example_mvag
from repro.evaluation.clustering_metrics import clustering_report
from repro.neighbors import (
    EXACT_CUTOFF,
    NeighborBackend,
    NeighborRequest,
    NeighborResult,
    NeighborStats,
    RPForest,
    available_backends,
    get_backend,
    normalize_rows,
    register_backend,
    resolve_backend,
    unregister_backend,
)
from repro.neighbors.rp_forest import DEFAULT_LEAF_SIZE
from repro.utils.errors import ValidationError
from repro.utils.sparse import is_symmetric

#: recall floor gated here and in benchmarks/bench_knn.py.
RECALL_FLOOR = 0.95


def reference_knn_graph(features, k=10, block_size=2048, weighted=True):
    """The pre-subsystem knn_graph implementation, kept verbatim as the
    bit-identity reference for the ``exact`` backend."""
    from repro.utils.sparse import symmetrize
    from repro.utils.validation import check_finite

    check_finite(features, name="attribute view")
    n = features.shape[0]
    if n < 2:
        return sp.csr_matrix((n, n), dtype=np.float64)
    sparse_input = sp.issparse(features)
    if sparse_input:
        features = features.tocsr().astype(np.float64)
        norms = np.sqrt(
            np.asarray(features.multiply(features).sum(axis=1)).ravel()
        )
        norms[norms == 0] = 1.0
        normalized = sp.diags(1.0 / norms).dot(features).tocsr()
    else:
        features = np.asarray(features, dtype=np.float64)
        norms = np.linalg.norm(features, axis=1)
        norms[norms == 0] = 1.0
        normalized = features / norms[:, None]
    effective_k = min(k, n - 1)

    rows_parts, cols_parts, vals_parts = [], [], []
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        if sparse_input:
            block = normalized[start:stop].dot(normalized.T).toarray()
        else:
            block = normalized[start:stop].dot(normalized.T)
        rows_local = np.arange(stop - start)
        self_columns = start + rows_local
        valid = self_columns < n
        block[rows_local[valid], self_columns[valid]] = -np.inf
        kk = min(effective_k, n - 1)
        top_idx = np.argpartition(block, -kk, axis=1)[:, -kk:]
        top_val = np.take_along_axis(block, top_idx, axis=1)
        rows_parts.append(np.repeat(np.arange(start, stop), top_idx.shape[1]))
        cols_parts.append(top_idx.ravel())
        vals_parts.append(top_val.ravel())
    rows = np.concatenate(rows_parts)
    cols = np.concatenate(cols_parts)
    vals = np.concatenate(vals_parts)
    finite = np.isfinite(vals)
    rows, cols, vals = rows[finite], cols[finite], vals[finite]
    vals = np.clip(vals, 0.0, None)
    if not weighted:
        vals = (vals > 0).astype(np.float64)
    adjacency = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
    adjacency = symmetrize(adjacency, mode="max")
    adjacency.setdiag(0.0)
    adjacency.eliminate_zeros()
    return adjacency


def manifold_features(n, d, latent_dim=8, n_clusters=6, seed=2):
    """Attribute-like features with realistic low intrinsic dimension."""
    rng = np.random.default_rng(seed)
    latent = rng.standard_normal((n, latent_dim))
    centers = rng.standard_normal((n_clusters, latent_dim)) * 3
    latent += centers[rng.integers(0, n_clusters, size=n)]
    projection = rng.standard_normal((latent_dim, d))
    return latent @ projection + 0.05 * rng.standard_normal((n, d))


def directed_recall(exact_graph, approx_graph):
    """Fraction of exact-graph edges present in the approximate graph."""
    exact_edges = set(zip(*exact_graph.nonzero()))
    approx_edges = set(zip(*approx_graph.nonzero()))
    return len(exact_edges & approx_edges) / len(exact_edges)


def assert_bit_identical(a, b):
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.data, b.data)


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #


class TestRegistry:
    def test_builtin_backends_registered(self):
        names = available_backends()
        assert "exact" in names
        assert "exact-f32" in names
        assert "rp-forest" in names

    def test_unknown_backend_lists_available(self):
        with pytest.raises(ValidationError, match="exact"):
            get_backend("hnswish")

    def test_unknown_backend_through_knn_graph(self):
        with pytest.raises(ValidationError, match="available"):
            knn_graph(np.ones((10, 3)), k=2, backend="nope")

    def test_duplicate_registration_rejected(self):
        class Dummy(NeighborBackend):
            name = "exact"

            def neighbors(self, request):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValidationError, match="already registered"):
            register_backend(Dummy())

    def test_register_unregister_roundtrip(self):
        class Plugin(NeighborBackend):
            name = "test-plugin"

            def neighbors(self, request):
                empty = np.empty(0, dtype=np.int64)
                return NeighborResult(
                    rows=empty, cols=empty, vals=np.empty(0),
                    candidate_pairs=0,
                )

        register_backend(Plugin())
        try:
            assert "test-plugin" in available_backends()
            graph = knn_graph(np.ones((4, 2)), k=1, backend="test-plugin")
            assert graph.nnz == 0
        finally:
            unregister_backend("test-plugin")
        assert "test-plugin" not in available_backends()

    def test_nameless_backend_rejected(self):
        class NoName(NeighborBackend):
            name = ""

            def neighbors(self, request):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ValidationError, match="name"):
            register_backend(NoName())

    def test_auto_resolution_by_size(self):
        assert resolve_backend(100, 10, "auto") == "exact"
        assert resolve_backend(EXACT_CUTOFF + 1, 10, "auto") == "rp-forest"

    def test_rp_forest_falls_back_on_small_problems(self):
        assert resolve_backend(100, 10, "rp-forest") == "exact"
        assert (
            resolve_backend(20000, DEFAULT_LEAF_SIZE, "rp-forest") == "exact"
        )
        assert resolve_backend(20000, 10, "rp-forest") == "rp-forest"

    def test_exact_passes_through(self):
        assert resolve_backend(10**6, 10, "exact") == "exact"
        assert resolve_backend(100, 10, "exact-f32") == "exact-f32"


# --------------------------------------------------------------------- #
# exact backend: bit identity with the pre-subsystem implementation
# --------------------------------------------------------------------- #


class TestExactBitIdentity:
    def test_dense_multiblock(self):
        features = np.random.default_rng(0).standard_normal((300, 9))
        assert_bit_identical(
            reference_knn_graph(features, k=6, block_size=32),
            knn_graph(features, k=6, block_size=32),
        )

    def test_dense_workers(self):
        features = np.random.default_rng(1).standard_normal((300, 9))
        assert_bit_identical(
            reference_knn_graph(features, k=6, block_size=32),
            knn_graph(features, k=6, block_size=32, workers=4),
        )

    def test_sparse(self):
        dense = np.abs(np.random.default_rng(2).standard_normal((200, 40)))
        dense[dense < 1.0] = 0.0
        features = sp.csr_matrix(dense)
        assert_bit_identical(
            reference_knn_graph(features, k=5, block_size=17),
            knn_graph(features, k=5, block_size=17),
        )

    def test_sparse_workers(self):
        dense = np.abs(np.random.default_rng(3).standard_normal((200, 40)))
        dense[dense < 1.0] = 0.0
        features = sp.csr_matrix(dense)
        assert_bit_identical(
            reference_knn_graph(features, k=5, block_size=17),
            knn_graph(features, k=5, block_size=17, workers=3),
        )

    def test_full_graph_shortcut(self):
        # k >= n - 1 takes the all-pairs shortcut; the graph must match
        # the reference argpartition path exactly.
        features = np.random.default_rng(4).standard_normal((40, 6))
        assert_bit_identical(
            reference_knn_graph(features, k=100, block_size=16),
            knn_graph(features, k=100, block_size=16),
        )

    def test_full_graph_shortcut_sparse(self):
        dense = np.abs(np.random.default_rng(5).standard_normal((30, 12)))
        dense[dense < 0.6] = 0.0
        features = sp.csr_matrix(dense)
        assert_bit_identical(
            reference_knn_graph(features, k=29, block_size=7),
            knn_graph(features, k=29, block_size=7),
        )

    def test_unweighted(self):
        features = np.abs(np.random.default_rng(6).standard_normal((50, 5)))
        assert_bit_identical(
            reference_knn_graph(features, k=4, weighted=False),
            knn_graph(features, k=4, weighted=False),
        )

    def test_assume_normalized_matches(self):
        features = np.random.default_rng(7).standard_normal((60, 8))
        normalized = normalize_rows(features)
        assert_bit_identical(
            knn_graph(features, k=5),
            knn_graph(normalized, k=5, assume_normalized=True),
        )


# --------------------------------------------------------------------- #
# exact-f32: neighbor sets identical, weights full precision
# --------------------------------------------------------------------- #


class TestExactF32:
    def assert_pattern_parity(self, a, b):
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        np.testing.assert_allclose(a.data, b.data, rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("seed", range(4))
    def test_dense_parity(self, seed):
        features = np.random.default_rng(seed).standard_normal((400, 24))
        self.assert_pattern_parity(
            knn_graph(features, k=8),
            knn_graph(features, k=8, backend="exact-f32"),
        )

    def test_sparse_parity(self):
        dense = np.abs(np.random.default_rng(9).standard_normal((300, 60)))
        dense[dense < 0.8] = 0.0
        features = sp.csr_matrix(dense)
        self.assert_pattern_parity(
            knn_graph(features, k=6),
            knn_graph(features, k=6, backend="exact-f32"),
        )

    def test_multiblock_parity(self):
        features = np.random.default_rng(10).standard_normal((250, 16))
        self.assert_pattern_parity(
            knn_graph(features, k=7, block_size=64),
            knn_graph(features, k=7, block_size=64, backend="exact-f32"),
        )

    def test_weights_are_float64_cosines(self):
        features = np.random.default_rng(11).standard_normal((100, 12))
        graph = knn_graph(features, k=5, backend="exact-f32")
        normalized = normalize_rows(features)
        rows, cols = graph.nonzero()
        exact_vals = np.einsum("ij,ij->i", normalized[rows], normalized[cols])
        np.testing.assert_allclose(
            np.asarray(graph[rows, cols]).ravel(), exact_vals, atol=1e-12
        )

    def test_tie_margin_param(self):
        features = np.random.default_rng(12).standard_normal((150, 10))
        wide = knn_graph(
            features, k=5, backend="exact-f32",
            backend_params={"tie_margin": 32},
        )
        self.assert_pattern_parity(knn_graph(features, k=5), wide)


# --------------------------------------------------------------------- #
# rp-forest
# --------------------------------------------------------------------- #


class TestRPForest:
    def force_rp_graph(self, features, k, seed=0, **params):
        """Build through the backend directly, bypassing the size-based
        fallback to exact (tests run at small n)."""
        normalized = normalize_rows(features)
        request = NeighborRequest(
            normalized=normalized, k=min(k, features.shape[0] - 1),
            seed=seed, params=params,
        )
        result = get_backend("rp-forest").neighbors(request)
        vals = np.clip(result.vals, 0.0, None)
        adjacency = sp.csr_matrix(
            (vals, (result.rows, result.cols)),
            shape=(features.shape[0],) * 2,
        )
        return result, adjacency

    def test_deterministic_under_fixed_seed(self):
        features = manifold_features(1500, 24, seed=3)
        first = knn_graph(features, k=8, backend="rp-forest", seed=5)
        second = knn_graph(features, k=8, backend="rp-forest", seed=5)
        assert (first != second).nnz == 0
        assert np.array_equal(first.data, second.data)

    def test_seed_changes_forest(self):
        features = manifold_features(1500, 24, seed=3)
        first = knn_graph(features, k=8, backend="rp-forest", seed=0)
        second = knn_graph(features, k=8, backend="rp-forest", seed=1)
        # Different forests make (at least slightly) different graphs on
        # approximate builds; equality would mean the seed is ignored.
        assert (first != second).nnz > 0

    def test_structural_invariants(self):
        features = manifold_features(1200, 16, seed=4)
        graph = knn_graph(features, k=6, backend="rp-forest")
        assert graph.shape == (1200, 1200)
        assert is_symmetric(graph)
        assert graph.diagonal().sum() == 0.0
        assert graph.nnz == 0 or graph.data.min() >= 0.0

    def test_running_example_has_no_attribute_views(self):
        # The Fig. 2 running example is graphs-only: a KNN build there is
        # a no-op, so the profile-level recall gate below uses the RM
        # dataset (the paper's running dataset, 1 attribute view).
        assert running_example_mvag().n_attribute_views == 0

    def test_recall_floor_rm_profile(self):
        from repro.datasets.profiles import load_profile_mvag
        from repro.utils.sparse import symmetrize

        features = load_profile_mvag("rm", seed=0).attribute_views[0]
        exact = knn_graph(features, k=5)
        # Force small leaves so the trees actually split at n=91 (the
        # registry would otherwise fall back to exact at this size).
        _, adjacency = self.force_rp_graph(
            features, k=5, n_trees=8, leaf_size=32, refine_iters=2
        )
        approx = symmetrize(adjacency, mode="max")
        approx.setdiag(0.0)
        approx.eliminate_zeros()
        assert directed_recall(exact, approx) >= RECALL_FLOOR

    def test_recall_floor_generated_4k(self):
        features = manifold_features(4000, 32, seed=2)
        exact = knn_graph(features, k=10)
        stats = NeighborStats(recall_sample=64)
        approx = knn_graph(
            features, k=10, backend="rp-forest", stats=stats
        )
        assert directed_recall(exact, approx) >= RECALL_FLOOR
        assert stats.recall_estimate is not None
        assert stats.recall_estimate >= RECALL_FLOOR
        # the whole point: far fewer candidates than exhaustive search
        assert stats.candidate_fraction < 0.5

    def test_sparse_features(self):
        rng = np.random.default_rng(6)
        dense = manifold_features(1200, 40, seed=6)
        dense[np.abs(dense) < 1.0] = 0.0
        features = sp.csr_matrix(dense)
        graph = knn_graph(features, k=6, backend="rp-forest")
        assert is_symmetric(graph)
        assert graph.nnz > 0

    def test_forest_reuse_matches_fresh(self):
        features = manifold_features(1500, 24, seed=7)
        normalized = normalize_rows(features)
        forest = RPForest(normalized, n_trees=4, leaf_size=64, seed=0)
        fresh = knn_graph(
            features, k=8, backend="rp-forest",
            backend_params={"n_trees": 4, "leaf_size": 64},
        )
        reused = knn_graph(
            features, k=8, backend="rp-forest",
            backend_params={"forest": forest},
        )
        assert (fresh != reused).nnz == 0

    def test_update_row_reroutes_all_trees(self):
        features = manifold_features(600, 16, seed=8)
        normalized = normalize_rows(features)
        forest = RPForest(normalized, n_trees=3, leaf_size=32, seed=0)
        new_row = normalize_rows(
            np.random.default_rng(9).standard_normal((1, 16))
        )[0]
        forest.update_row(11, new_row.astype(np.float32))
        for tree in forest.trees:
            leaf = tree.route(new_row.astype(np.float32))
            assert tree.leaf_of[11] == leaf
            assert 11 in tree.leaves[leaf]

    def test_update_row_with_spill_never_duplicates_membership(self):
        # A reroute into a leaf that already holds a spilled copy of the
        # row must not create a second copy (a duplicate would surface a
        # self-pair candidate that wastes one of the node's k slots).
        features = manifold_features(800, 16, seed=13)
        normalized = normalize_rows(features)
        forest = RPForest(
            normalized, n_trees=4, leaf_size=48, seed=0, spill=0.2
        )
        rng = np.random.default_rng(14)
        for step in range(40):
            index = int(rng.integers(800))
            row = normalize_rows(rng.standard_normal((1, 16)))[0]
            forest.update_row(index, row.astype(np.float32))
            for tree in forest.trees:
                leaf = tree.leaves[int(tree.leaf_of[index])]
                assert leaf.count(index) == 1

    def test_streamed_scatter_matches_materialized_merge(self):
        # The spill-free build scatters each scored chunk straight into
        # the merge tables; the result must be bit-identical to
        # materializing the full triplet stream and scattering once
        # (the pre-PR-7 path, kept for spilled forests).
        from repro.neighbors.rp_forest import (
            RPForest,
            _finish_scatter_tables,
            _leaf_scatter,
            _leaf_triplets,
            _scatter_merge_top_k,
        )

        k = 7
        for features in (
            manifold_features(1100, 24, seed=21),
            sp.random(1100, 40, density=0.1, format="csr", random_state=3),
        ):
            normalized = normalize_rows(features)
            low = normalized.astype(np.float32)
            forest = RPForest(low, n_trees=4, leaf_size=40, seed=2)
            n = low.shape[0]
            width = forest.n_trees * k
            col_table = np.full((n, width), -1, dtype=np.int64)
            val_table = np.full((n, width), -np.inf)
            scored = _leaf_scatter(low, forest, k, col_table, val_table)
            streamed = _finish_scatter_tables(col_table, val_table, k)

            rows, cols, vals, slots, scored_ref = _leaf_triplets(
                low, forest, k
            )
            reference = _scatter_merge_top_k(
                rows, cols, vals, slots, n, width, k
            )
            assert scored == scored_ref
            assert np.array_equal(streamed[0], reference[0])
            assert np.array_equal(streamed[1], reference[1])

    def test_finish_blocking_is_invariant(self, monkeypatch):
        # The dedup/top-k finish runs in row blocks purely to bound its
        # sort temporaries; any block size must give the same tables.
        import repro.neighbors.rp_forest as rp

        rng = np.random.default_rng(6)
        n, width, k = 500, 24, 6
        col_table = rng.integers(-1, n, size=(n, width)).astype(np.int64)
        val_table = rng.standard_normal((n, width))
        val_table[col_table < 0] = -np.inf
        whole = rp._finish_scatter_tables(
            col_table.copy(), val_table.copy(), k
        )
        monkeypatch.setattr(rp, "_FINISH_BLOCK_ROWS", 37)
        blocked = rp._finish_scatter_tables(
            col_table.copy(), val_table.copy(), k
        )
        assert np.array_equal(whole[0], blocked[0])
        assert np.array_equal(whole[1], blocked[1])

    def test_refinement_improves_or_keeps_recall(self):
        features = manifold_features(3000, 32, latent_dim=12, seed=10)
        exact = knn_graph(features, k=10)
        base = knn_graph(
            features, k=10, backend="rp-forest",
            backend_params={"n_trees": 3, "leaf_size": 64,
                            "refine_iters": 0},
        )
        refined = knn_graph(
            features, k=10, backend="rp-forest",
            backend_params={"n_trees": 3, "leaf_size": 64,
                            "refine_iters": 2},
        )
        assert directed_recall(exact, refined) >= directed_recall(
            exact, base
        )

    def test_spill_improves_recall(self):
        features = manifold_features(3000, 32, latent_dim=12, seed=11)
        exact = knn_graph(features, k=10)
        plain = knn_graph(
            features, k=10, backend="rp-forest",
            backend_params={"n_trees": 3, "leaf_size": 64},
        )
        spilled = knn_graph(
            features, k=10, backend="rp-forest",
            backend_params={"n_trees": 3, "leaf_size": 64, "spill": 0.1},
        )
        assert directed_recall(exact, spilled) > directed_recall(
            exact, plain
        )

    def test_invalid_params_rejected(self):
        features = manifold_features(600, 8, seed=12)
        normalized = normalize_rows(features)
        with pytest.raises(ValidationError):
            RPForest(normalized, n_trees=0)
        with pytest.raises(ValidationError):
            RPForest(normalized, leaf_size=1)
        with pytest.raises(ValidationError):
            RPForest(normalized, spill=0.6)


# --------------------------------------------------------------------- #
# NeighborStats
# --------------------------------------------------------------------- #


class TestNeighborStats:
    def test_exact_build_counters(self):
        stats = NeighborStats()
        features = np.random.default_rng(0).standard_normal((50, 6))
        knn_graph(features, k=4, stats=stats)
        assert stats.builds == 1
        assert stats.by_backend == {"exact": 1}
        assert stats.candidate_pairs == 50 * 49
        assert stats.candidate_fraction == 1.0
        assert stats.recall_estimate is None  # exact: nothing sampled

    def test_summary_mentions_backend_and_recall(self):
        stats = NeighborStats(recall_sample=16)
        features = manifold_features(1200, 16, seed=1)
        knn_graph(features, k=5, backend="rp-forest", stats=stats)
        text = stats.summary()
        assert "rp-forest" in text
        assert "recall" in text

    def test_recall_sampling_disabled(self):
        stats = NeighborStats(recall_sample=0)
        features = manifold_features(1200, 16, seed=1)
        knn_graph(features, k=5, backend="rp-forest", stats=stats)
        assert stats.recall_estimate is None

    def test_accumulates_across_builds(self):
        stats = NeighborStats()
        features = np.random.default_rng(2).standard_normal((40, 5))
        knn_graph(features, k=3, stats=stats)
        knn_graph(features, k=3, backend="exact-f32", stats=stats)
        assert stats.builds == 2
        assert stats.by_backend == {"exact": 1, "exact-f32": 1}


# --------------------------------------------------------------------- #
# Pipeline threading
# --------------------------------------------------------------------- #


class TestPipelineThreading:
    @pytest.fixture()
    def small_mvag(self):
        return generate_mvag(
            n_nodes=90,
            n_clusters=2,
            graph_view_strengths=[0.8],
            attribute_view_dims=[12],
            seed=3,
        )

    def test_build_view_laplacians_backend_param(self, small_mvag):
        exact = build_view_laplacians(small_mvag, knn_k=4)
        f32 = build_view_laplacians(
            small_mvag, knn_k=4, knn_backend="exact-f32"
        )
        for a, b in zip(exact, f32):
            assert abs(a - b).max() < 1e-10

    def test_build_view_laplacians_stats(self, small_mvag):
        stats = NeighborStats()
        build_view_laplacians(small_mvag, knn_k=4, neighbor_stats=stats)
        assert stats.builds == 1  # one attribute view

    def test_sgla_config_carries_backend(self, small_mvag):
        config = SGLAConfig(knn_k=4, knn_backend="exact-f32")
        result = SGLA(config).fit(small_mvag)
        assert result.neighbor_stats is not None
        assert result.neighbor_stats.by_backend == {"exact-f32": 1}

    def test_config_defaults_to_exact(self):
        config = SGLAConfig()
        assert config.knn_backend == "exact"
        assert config.knn_params is None

    def test_cluster_mvag_threads_stats(self, small_mvag):
        stats = NeighborStats()
        cluster_mvag(
            small_mvag, method="sgla+",
            config=SGLAConfig(knn_k=4), neighbor_stats=stats,
        )
        assert stats.builds >= 1

    def test_end_to_end_quality_parity(self):
        # Clustering quality with the approximate graph must stay within
        # noise of the exact build (the attribute view carries signal).
        mvag = generate_mvag(
            n_nodes=700,
            n_clusters=3,
            graph_view_strengths=[0.75],
            attribute_view_dims=[24],
            default_attribute_signal=0.6,
            seed=4,
        )
        config_exact = SGLAConfig(knn_k=8)
        config_rp = SGLAConfig(
            knn_k=8, knn_backend="rp-forest",
            knn_params={"n_trees": 8, "leaf_size": 96, "refine_iters": 1},
        )
        exact_out = cluster_mvag(mvag, method="sgla", config=config_exact)
        rp_out = cluster_mvag(mvag, method="sgla", config=config_rp)
        exact_report = clustering_report(mvag.labels, exact_out.labels)
        rp_report = clustering_report(mvag.labels, rp_out.labels)
        assert rp_out.integration.neighbor_stats.by_backend == {
            "rp-forest": 1
        }
        assert abs(exact_report["ari"] - rp_report["ari"]) <= 0.1
        assert abs(exact_report["nmi"] - rp_report["nmi"]) <= 0.1
        # w* must stay close on the simplex, too
        assert (
            np.abs(
                exact_out.integration.weights - rp_out.integration.weights
            ).max()
            <= 0.1
        )

    def test_cli_knn_backend_flag(self, capsys):
        from repro.cli import main

        code = main(
            ["cluster", "rm", "--method", "sgla+",
             "--knn-backend", "exact-f32"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "neighbors:" in out
        assert "exact-f32" in out
