"""Tests for the surrogate convexification and SGLA+ candidate safeguards."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sampling import interpolation_samples
from repro.core.sgla_plus import _LINE_SEARCH_STEPS, _gradient_candidates
from repro.core.surrogate import fit_surrogate


class TestConvexified:
    @given(st.integers(min_value=2, max_value=6), st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_hessian_is_psd(self, r, seed):
        rng = np.random.default_rng(seed)
        samples = interpolation_samples(r)
        values = rng.standard_normal(len(samples))
        convex = fit_surrogate(samples, values).convexified()
        eigenvalues = np.linalg.eigvalsh(convex.hessian())
        assert eigenvalues.min() >= -1e-10

    @given(st.integers(min_value=2, max_value=5), st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_value_preserved_at_uniform(self, r, seed):
        rng = np.random.default_rng(seed)
        samples = interpolation_samples(r)
        values = rng.standard_normal(len(samples))
        surrogate = fit_surrogate(samples, values)
        convex = surrogate.convexified()
        uniform = np.full(r, 1.0 / r)
        assert convex(uniform) == pytest.approx(surrogate(uniform), abs=1e-8)

    def test_already_convex_unchanged(self):
        """A convex quadratic's convexification is (numerically) itself."""
        rng = np.random.default_rng(3)
        r = 4
        dim = r - 1
        hessian_root = rng.standard_normal((dim, dim))

        def truth(weights):
            u = np.asarray(weights)[:-1]
            return float(u @ (hessian_root @ hessian_root.T) @ u + u.sum())

        samples = [rng.dirichlet(np.ones(r)) for _ in range(40)]
        values = [truth(s) for s in samples]
        surrogate = fit_surrogate(samples, values, alpha=1e-10, mode="ridge")
        convex = surrogate.convexified()
        for probe in samples[:10]:
            assert convex(probe) == pytest.approx(surrogate(probe), abs=1e-5)

    def test_hessian_layout_matches_gradient(self):
        """d(gradient)/du must equal the Hessian (finite differences)."""
        samples = interpolation_samples(4)
        values = [1.0, 0.2, -0.5, 0.8, 1.4]
        surrogate = fit_surrogate(samples, values)
        hessian = surrogate.hessian()
        point = np.array([0.3, 0.3, 0.2, 0.2])
        step = 1e-6
        for i in range(3):
            bumped = point.copy()
            bumped[i] += step
            numeric = (surrogate.gradient(bumped) - surrogate.gradient(point)) / step
            np.testing.assert_allclose(hessian[:, i], numeric, atol=1e-4)


class TestGradientCandidates:
    def test_candidates_on_simplex(self):
        r = 5
        samples = interpolation_samples(r)
        rng = np.random.default_rng(0)
        values = rng.standard_normal(len(samples)).tolist()
        candidates = _gradient_candidates(samples, values, r)
        assert len(candidates) == len(_LINE_SEARCH_STEPS)
        for candidate in candidates:
            assert np.all(candidate >= -1e-12)
            assert candidate.sum() == pytest.approx(1.0)

    def test_direction_favors_good_views(self):
        """Views whose midpoint lowered h must gain weight."""
        r = 4
        samples = interpolation_samples(r)
        # View 0's midpoint improved the objective; view 3's hurt it.
        values = [1.0, 0.5, 1.0, 1.0, 1.5]
        candidates = _gradient_candidates(samples, values, r)
        first_step = candidates[0]
        assert first_step[0] > 1.0 / r
        assert first_step[3] < 1.0 / r

    def test_flat_scores_give_no_candidates(self):
        r = 3
        samples = interpolation_samples(r)
        values = [1.0] * (r + 1)
        assert _gradient_candidates(samples, values, r) == []


class TestAdaptiveNetmfRescale:
    def test_subunit_matrix_rescaled(self):
        """A DeepWalk matrix entirely below 1 must not embed to zeros."""
        from repro.embedding.netmf import _embed_log_matrix

        rng = np.random.default_rng(1)
        low_rank = rng.random((40, 4)) * 0.3
        matrix = low_rank @ low_rank.T  # all entries << 1
        embedding = _embed_log_matrix(matrix.copy(), dim=4, seed=0)
        assert np.abs(embedding).max() > 1e-6

    def test_healthy_matrix_untouched(self):
        """A matrix with plenty of mass above 1 keeps classic behaviour."""
        from repro.embedding.netmf import _embed_log_matrix

        rng = np.random.default_rng(2)
        matrix = rng.random((30, 30)) * 10.0
        matrix = (matrix + matrix.T) / 2
        reference = np.log(np.maximum(matrix, 1.0))
        embedding = _embed_log_matrix(matrix.copy(), dim=4, seed=0)
        u, s, vt = np.linalg.svd(reference)
        expected = u[:, :4] * np.sqrt(s[:4])[None, :]
        # Compare captured spectral energy rather than signs/rotations.
        assert np.linalg.norm(embedding) == pytest.approx(
            np.linalg.norm(expected), rel=0.05
        )
