"""Tests for the spectrum-guided objective h(w)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.eigen import bottom_eigenvalues
from repro.core.laplacian import normalized_laplacian
from repro.core.objective import (
    SpectralObjective,
    objective_surface,
    objective_variant,
)
from repro.utils.errors import ValidationError


def block_graph(sizes, p_cross=0.0, seed=0):
    """Union of cliques with optional random cross edges."""
    rng = np.random.default_rng(seed)
    n = sum(sizes)
    dense = np.zeros((n, n))
    start = 0
    for size in sizes:
        dense[start : start + size, start : start + size] = 1.0
        start += size
    np.fill_diagonal(dense, 0.0)
    if p_cross > 0:
        mask = rng.random((n, n)) < p_cross
        mask = np.triu(mask, 1)
        dense = np.maximum(dense, (mask | mask.T).astype(float))
    return sp.csr_matrix(dense)


def erdos_renyi(n, p, seed=0):
    """A pure-noise view: symmetric ER graph with no community structure."""
    rng = np.random.default_rng(seed)
    mask = np.triu(rng.random((n, n)) < p, 1)
    dense = (mask | mask.T).astype(float)
    return sp.csr_matrix(dense)


@pytest.fixture(scope="module")
def two_view_objective():
    good = normalized_laplacian(block_graph([10, 10], p_cross=0.02, seed=1))
    noisy = normalized_laplacian(erdos_renyi(20, 0.25, seed=2))
    return SpectralObjective([good, noisy], k=2, gamma=0.5)


class TestComponents:
    def test_hand_computed_value(self, two_view_objective):
        weights = np.array([0.5, 0.5])
        parts = two_view_objective.components(weights)
        laplacian = two_view_objective.aggregate(weights)
        values = bottom_eigenvalues(laplacian, 3, method="dense")
        assert parts.eigengap == pytest.approx(values[1] / values[2], rel=1e-8)
        assert parts.connectivity == pytest.approx(values[1], rel=1e-8)
        assert parts.regularization == pytest.approx(0.5 * 0.5)
        assert parts.value == pytest.approx(
            parts.eigengap - parts.connectivity + parts.regularization
        )

    def test_perfect_clusters_have_small_eigengap(self):
        perfect = normalized_laplacian(block_graph([10, 10]))
        objective = SpectralObjective([perfect], k=2, gamma=0.0)
        parts = objective.components([1.0])
        assert parts.eigengap == pytest.approx(0.0, abs=1e-9)

    def test_eigengap_in_unit_interval(self, two_view_objective):
        for w1 in np.linspace(0, 1, 7):
            parts = two_view_objective.components([w1, 1 - w1])
            assert 0.0 <= parts.eigengap <= 1.0 + 1e-9

    def test_good_view_weighting_beats_noise(self, two_view_objective):
        """The objective must prefer the structured view over pure noise."""
        favoring_good = two_view_objective([0.8, 0.2])
        favoring_noise = two_view_objective([0.2, 0.8])
        assert favoring_good < favoring_noise

    def test_gamma_penalizes_concentration(self):
        good = normalized_laplacian(block_graph([10, 10], p_cross=0.02))
        flat = SpectralObjective([good, good], k=2, gamma=0.0)
        regularized = SpectralObjective([good, good], k=2, gamma=1.0)
        concentrated = np.array([1.0, 0.0])
        uniform = np.array([0.5, 0.5])
        # Identical views: spectral parts equal, only regularizer differs.
        assert flat(concentrated) == pytest.approx(flat(uniform), abs=1e-9)
        assert regularized(concentrated) > regularized(uniform)


class TestCachingAndCounting:
    def test_cache_hits_do_not_recount(self, two_view_objective):
        objective = SpectralObjective(
            two_view_objective.laplacians, k=2, gamma=0.5
        )
        before = objective.n_evaluations
        objective([0.4, 0.6])
        objective([0.4, 0.6])
        assert objective.n_evaluations == before + 1

    def test_cache_disabled(self, two_view_objective):
        objective = SpectralObjective(
            two_view_objective.laplacians, k=2, gamma=0.5, cache=False
        )
        objective([0.4, 0.6])
        objective([0.4, 0.6])
        assert objective.n_evaluations == 2

    def test_clear_cache(self, two_view_objective):
        objective = SpectralObjective(
            two_view_objective.laplacians, k=2, gamma=0.5
        )
        objective([0.4, 0.6])
        objective.clear_cache()
        objective([0.4, 0.6])
        assert objective.n_evaluations == 2


class TestValidation:
    def test_k_too_large(self, two_view_objective):
        with pytest.raises(ValidationError):
            SpectralObjective(two_view_objective.laplacians, k=20)

    def test_no_views(self):
        with pytest.raises(ValidationError):
            SpectralObjective([], k=2)

    def test_weights_validated(self, two_view_objective):
        with pytest.raises(ValidationError):
            two_view_objective([0.9, 0.9])


class TestVariants:
    def test_full_variant_is_objective(self, two_view_objective):
        func = objective_variant(two_view_objective, "full")
        assert func is two_view_objective

    def test_eigengap_variant(self, two_view_objective):
        func = objective_variant(two_view_objective, "eigengap")
        parts = two_view_objective.components([0.5, 0.5])
        assert func([0.5, 0.5]) == pytest.approx(
            parts.eigengap + parts.regularization
        )

    def test_connectivity_variant(self, two_view_objective):
        func = objective_variant(two_view_objective, "connectivity")
        parts = two_view_objective.components([0.5, 0.5])
        assert func([0.5, 0.5]) == pytest.approx(
            -parts.connectivity + parts.regularization
        )

    def test_unknown_variant(self, two_view_objective):
        with pytest.raises(ValidationError):
            objective_variant(two_view_objective, "bogus")


class TestSurface:
    def test_two_view_surface(self, two_view_objective):
        surface = objective_surface(two_view_objective, resolution=0.25)
        assert surface["points"].shape[1] == 2
        assert surface["values"].shape[0] == surface["points"].shape[0]

    def test_r_above_three_none(self):
        laplacian = normalized_laplacian(block_graph([6, 6]))
        objective = SpectralObjective([laplacian] * 4, k=2)
        assert objective_surface(objective) is None
