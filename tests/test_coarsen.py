"""Tests for the coarsening subsystem (repro.coarsen, DESIGN.md §12).

Covers the registry semantics, the prolongation/Galerkin primitives and
their spectral guarantees (``P^T P = I``, ``lambda_j(P^T L P) >=
lambda_j(L)``), both built-in backends' determinism and aggregate
properties, and the first-order refinement machinery (Hellmann–Feynman
gradient vs finite differences, descent of the projected BB loop).
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.coarsen import (
    CoarsenBackend,
    CoarsenStats,
    aggregate_similarity,
    available_backends,
    build_hierarchy,
    galerkin_project,
    get_backend,
    gradient_refine,
    heavy_edge_matching,
    landmark_aggregates,
    prolong_block,
    prolongation_from_aggregates,
    register_backend,
    spectral_gradient,
    unregister_backend,
)
from repro.core.laplacian import aggregate_laplacians, build_view_laplacians
from repro.core.objective import SpectralObjective
from repro.core.sgla import SGLAConfig
from repro.datasets.generator import generate_mvag
from repro.optim.simplex import project_to_simplex
from repro.utils.errors import ValidationError


@pytest.fixture(scope="module")
def small_laplacians():
    mvag = generate_mvag(
        200, 4, graph_view_strengths=(0.8, 0.3), attribute_view_dims=(12,),
        seed=11,
    )
    return build_view_laplacians(mvag, knn_k=8)


# --------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------- #


class _DummyBackend(CoarsenBackend):
    name = "dummy-coarsen"

    def coarsen(self, laplacians, seed=0, params=None):
        n = laplacians[0].shape[0]
        return prolongation_from_aggregates(np.arange(n) // 2)


def test_registry_lists_builtins():
    assert "heavy-edge" in available_backends()
    assert "landmark" in available_backends()


def test_registry_register_get_unregister():
    backend = _DummyBackend()
    register_backend(backend)
    try:
        assert get_backend("dummy-coarsen") is backend
        assert "dummy-coarsen" in available_backends()
    finally:
        unregister_backend("dummy-coarsen")
    assert "dummy-coarsen" not in available_backends()


def test_registry_duplicate_rejected():
    backend = _DummyBackend()
    register_backend(backend)
    try:
        with pytest.raises(ValidationError):
            register_backend(_DummyBackend())
        register_backend(_DummyBackend(), overwrite=True)  # explicit ok
    finally:
        unregister_backend("dummy-coarsen")


def test_registry_unknown_backend_lists_available():
    with pytest.raises(ValidationError, match="heavy-edge"):
        get_backend("no-such-backend")


def test_registry_empty_name_rejected():
    nameless = _DummyBackend()
    nameless.name = ""
    with pytest.raises(ValidationError):
        register_backend(nameless)


# --------------------------------------------------------------------- #
# Prolongation / Galerkin primitives
# --------------------------------------------------------------------- #


def test_prolongation_columns_orthonormal():
    aggregates = np.array([0, 0, 1, 2, 2, 2, 3])
    prolongation = prolongation_from_aggregates(aggregates)
    gram = (prolongation.T @ prolongation).toarray()
    np.testing.assert_allclose(gram, np.eye(4), atol=1e-12)


def test_prolongation_rejects_unassigned_and_skipped():
    with pytest.raises(ValidationError):
        prolongation_from_aggregates(np.array([0, -1, 1]))
    with pytest.raises(ValidationError):
        prolongation_from_aggregates(np.array([0, 0, 2]))  # skips 1
    with pytest.raises(ValidationError):
        prolongation_from_aggregates(np.array([], dtype=np.int64))


def test_galerkin_eigenvalues_bound_below_by_fine(small_laplacians):
    """Rayleigh–Ritz: coarse eigenvalues majorize the fine ones."""
    similarity = aggregate_similarity(small_laplacians)
    prolongation = prolongation_from_aggregates(
        heavy_edge_matching(similarity)
    )
    coarse = galerkin_project(small_laplacians, prolongation)
    for fine_l, coarse_l in zip(small_laplacians, coarse):
        fine_vals = np.linalg.eigvalsh(fine_l.toarray())
        coarse_vals = np.linalg.eigvalsh(coarse_l.toarray())
        assert np.all(
            coarse_vals >= fine_vals[: coarse_vals.size] - 1e-9
        )
        # Symmetry is restored after projection noise.
        assert (abs(coarse_l - coarse_l.T) > 1e-12).nnz == 0


def test_aggregate_similarity_nonnegative_zero_diagonal(small_laplacians):
    similarity = aggregate_similarity(small_laplacians)
    assert similarity.diagonal().max() == 0.0
    assert similarity.nnz == 0 or similarity.data.min() >= 0.0


def test_aggregate_similarity_empty_rejected():
    with pytest.raises(ValidationError):
        aggregate_similarity([])


# --------------------------------------------------------------------- #
# Backends
# --------------------------------------------------------------------- #


def test_heavy_edge_matching_pairs_obvious_couples():
    # Two tight pairs plus one isolated node.
    adjacency = sp.csr_matrix(
        np.array(
            [
                [0, 5, 0, 0, 0],
                [5, 0, 0, 0, 0],
                [0, 0, 0, 4, 0],
                [0, 0, 4, 0, 0],
                [0, 0, 0, 0, 0],
            ],
            dtype=np.float64,
        )
    )
    aggregates = heavy_edge_matching(adjacency)
    assert aggregates[0] == aggregates[1]
    assert aggregates[2] == aggregates[3]
    assert aggregates[4] not in (aggregates[0], aggregates[2])
    assert np.array_equal(np.unique(aggregates), np.arange(3))


def test_heavy_edge_deterministic_and_shrinking(small_laplacians):
    similarity = aggregate_similarity(small_laplacians)
    first = heavy_edge_matching(similarity)
    second = heavy_edge_matching(similarity)
    np.testing.assert_array_equal(first, second)
    n_coarse = int(first.max()) + 1
    # One round halves at best; three rounds must still shrink decently.
    assert n_coarse < 0.8 * similarity.shape[0]
    assert n_coarse >= similarity.shape[0] / 2


def test_landmark_ratio_controls_size(small_laplacians):
    similarity = aggregate_similarity(small_laplacians)
    aggregates = landmark_aggregates(similarity, ratio=0.2, seed=5)
    n_coarse = int(aggregates.max()) + 1
    # Landmarks plus possibly a few unreachable singletons.
    assert n_coarse >= int(np.ceil(0.2 * similarity.shape[0]))
    assert n_coarse < similarity.shape[0]
    assert (aggregates >= 0).all()
    repeat = landmark_aggregates(similarity, ratio=0.2, seed=5)
    np.testing.assert_array_equal(aggregates, repeat)
    other_seed = landmark_aggregates(similarity, ratio=0.2, seed=6)
    assert not np.array_equal(aggregates, other_seed)


def test_landmark_rejects_bad_ratio(small_laplacians):
    similarity = aggregate_similarity(small_laplacians)
    with pytest.raises(ValidationError):
        landmark_aggregates(similarity, ratio=0.0)
    with pytest.raises(ValidationError):
        landmark_aggregates(similarity, ratio=1.0)


@pytest.mark.parametrize("backend_name", ["heavy-edge", "landmark"])
def test_backend_prolongations_are_valid(small_laplacians, backend_name):
    backend = get_backend(backend_name)
    prolongation = backend.coarsen(small_laplacians, seed=0)
    n, n_coarse = prolongation.shape
    assert n == small_laplacians[0].shape[0]
    assert 0 < n_coarse < n
    gram = (prolongation.T @ prolongation).toarray()
    np.testing.assert_allclose(gram, np.eye(n_coarse), atol=1e-12)


# --------------------------------------------------------------------- #
# Hierarchy + prolonged blocks
# --------------------------------------------------------------------- #


def test_build_hierarchy_respects_levels_and_floor(small_laplacians):
    config = SGLAConfig(coarsen_levels=2, coarsen_params={"min_nodes": 10})
    hierarchy = build_hierarchy(small_laplacians, k=4, config=config)
    assert hierarchy.n_levels == 2
    assert len(hierarchy.sizes) == 3
    assert hierarchy.sizes[0] == small_laplacians[0].shape[0]
    assert hierarchy.sizes[1] > hierarchy.sizes[2]
    assert hierarchy.coarse_laplacians[0].shape[0] == hierarchy.sizes[-1]

    floor_config = SGLAConfig(
        coarsen_levels=5, coarsen_params={"min_nodes": 10_000}
    )
    flat = build_hierarchy(small_laplacians, k=4, config=floor_config)
    assert flat.n_levels == 0
    assert flat.sizes == [small_laplacians[0].shape[0]]


def test_prolong_block_orthonormal_through_chain(small_laplacians):
    config = SGLAConfig(coarsen_levels=2, coarsen_params={"min_nodes": 10})
    hierarchy = build_hierarchy(small_laplacians, k=4, config=config)
    rng = np.random.default_rng(0)
    block = rng.standard_normal((hierarchy.sizes[-1], 5))
    lifted = prolong_block(hierarchy, block)
    assert lifted.shape == (hierarchy.sizes[0], 5)
    np.testing.assert_allclose(
        lifted.T @ lifted, np.eye(5), atol=1e-10
    )
    assert prolong_block(hierarchy, None) is None


# --------------------------------------------------------------------- #
# First-order refinement machinery
# --------------------------------------------------------------------- #


def test_spectral_gradient_matches_finite_differences(small_laplacians):
    """Hellmann–Feynman gradient == central differences of h (tangent)."""
    k = 4
    gamma = 0.5
    weights = np.array([0.5, 0.3, 0.2])
    objective = SpectralObjective(
        small_laplacians, k=k, gamma=gamma, cache=False
    )
    matrix = aggregate_laplacians(small_laplacians, weights)
    eigenvalues, vectors = np.linalg.eigh(matrix.toarray())
    gradient = spectral_gradient(
        small_laplacians, weights, eigenvalues[: k + 1],
        vectors[:, : k + 1], k, gamma,
    )

    step = 1e-6
    for direction in (
        np.array([1.0, -1.0, 0.0]),
        np.array([0.0, 1.0, -1.0]),
        np.array([1.0, 0.0, -1.0]),
    ):
        # Tangent directions keep the iterate on the simplex, so the
        # projected objective and the raw gradient agree.
        forward = objective.evaluate_exact(weights + step * direction).value
        backward = objective.evaluate_exact(weights - step * direction).value
        numeric = (forward - backward) / (2 * step)
        analytic = float(gradient @ direction)
        assert abs(numeric - analytic) < 5e-4, (direction, numeric, analytic)


def test_gradient_refine_descends_and_converges(small_laplacians):
    k = 4
    gamma = 0.5
    config = SGLAConfig()
    solver = config.make_solver()
    start = project_to_simplex(np.array([0.6, 0.2, 0.2]))
    weights, value, history, n_solves, converged = gradient_refine(
        small_laplacians, k, gamma, solver, start, xtol=1e-6, max_solves=20
    )
    assert n_solves <= 20
    assert len(history) == n_solves
    values = [entry[1] for entry in history]
    # First entry scores the start; the final value never exceeds it.
    assert value <= values[0] + 1e-12
    np.testing.assert_allclose(weights.sum(), 1.0, atol=1e-9)
    assert weights.min() >= -1e-12
    if converged:
        # At convergence the projected gradient step stalls: re-running
        # from the result must not move or improve beyond tolerance.
        again, again_value, _, _, _ = gradient_refine(
            small_laplacians, k, gamma, solver, weights,
            xtol=1e-6, max_solves=6,
        )
        assert abs(again_value - value) < 1e-6


def test_coarsen_stats_summary_shape():
    stats = CoarsenStats(
        backend="heavy-edge", levels=[100, 60, 35], coarse_solves=12,
        fine_solves=5, coarsen_seconds=0.25,
    )
    text = stats.summary()
    assert "heavy-edge" in text
    assert "100 -> 60 -> 35" in text
    assert "12 coarse / 5 fine" in text
    assert CoarsenStats().summary().count("flat") == 1
