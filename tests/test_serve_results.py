"""Tests of the deterministic result cache (DESIGN.md §15).

Unit coverage of the canonical job-identity digest and the
byte-budgeted LRU, plus live-daemon integration: a cache hit must be
*bit-identical* to recomputation for every job kind (the §13 cold-solve
contract is what makes caching sound), the per-tenant ``result_hits``
counter must surface end to end, and ``result_cache=False`` /
``--no-result-cache`` must fully disable the layer.
"""

from __future__ import annotations

import subprocess
import sys
import threading
import time

import numpy as np
import pytest

from repro.core.objective import SpectralObjective
from repro.core.pipeline import cluster_mvag, embed_mvag
from repro.core.sgla import SGLAConfig, prepare_laplacians
from repro.datasets.profiles import load_profile_mvag
from repro.serve import ServeClient, ServeConfig, ServeDaemon
from repro.serve.daemon import spawn_daemon
from repro.serve.results import (
    ResultCache,
    merge_results_snapshots,
    result_key,
    results_summary,
)
from repro.solvers import SolverContext

PROFILE = "rm_small"
R = 11  # view count of rm_small


def simplex_weights(seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    raw = rng.random(R) + 0.05
    return raw / raw.sum()


def wait_for(predicate, timeout=10.0, interval=0.01) -> bool:
    limit = time.monotonic() + timeout
    while time.monotonic() < limit:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# ---------------------------------------------------------------------- #
# result_key: the canonical identity digest
# ---------------------------------------------------------------------- #

class TestResultKey:
    def test_explicit_defaults_equal_omitted(self):
        w = simplex_weights(0)
        bare = {"kind": "objective", "profile": PROFILE, "weights": w}
        spelled = {
            "kind": "objective", "profile": PROFILE, "weights": w,
            "seed": 0, "gamma": 0.5, "k": None, "config": {},
        }
        assert result_key(bare) == result_key(spelled)

    def test_cluster_and_embed_defaults_resolved(self):
        assert result_key(
            {"kind": "cluster", "profile": PROFILE}
        ) == result_key({
            "kind": "cluster", "profile": PROFILE,
            "method": "sgla+", "assign": "discretize", "seed": 0,
        })
        assert result_key(
            {"kind": "embed", "profile": PROFILE}
        ) == result_key({
            "kind": "embed", "profile": PROFILE,
            "method": "sgla+", "dim": 64, "backend": "auto",
        })

    def test_identity_fields_change_the_key(self):
        w = simplex_weights(0)
        base = {"kind": "objective", "profile": PROFILE, "weights": w}
        assert result_key(base) != result_key({**base, "seed": 1})
        assert result_key(base) != result_key({**base, "gamma": 0.7})
        assert result_key(base) != result_key({**base, "k": 3})
        assert result_key(base) != result_key(
            {**base, "weights": simplex_weights(1)}
        )
        assert result_key(base) != result_key(
            {**base, "profile": "rm_medium"}
        )
        assert result_key(
            {"kind": "cluster", "profile": PROFILE}
        ) != result_key(
            {"kind": "embed", "profile": PROFILE}
        )

    def test_weights_normalized_to_float64_bytes(self):
        w = simplex_weights(0)
        as_list = {"kind": "objective", "profile": PROFILE,
                   "weights": list(w)}
        as_array = {"kind": "objective", "profile": PROFILE, "weights": w}
        assert result_key(as_list) == result_key(as_array)

    def test_config_override_order_is_canonical(self):
        w = simplex_weights(0)
        first = {"kind": "objective", "profile": PROFILE, "weights": w,
                 "config": {"t_max": 30, "eps": 1e-5}}
        second = {"kind": "objective", "profile": PROFILE, "weights": w,
                  "config": {"eps": 1e-5, "t_max": 30}}
        assert result_key(first) == result_key(second)
        changed = {"kind": "objective", "profile": PROFILE, "weights": w,
                   "config": {"t_max": 40, "eps": 1e-5}}
        assert result_key(first) != result_key(changed)

    def test_unknown_fields_never_collide(self):
        # A field this version doesn't interpret still changes the key:
        # a future executor reading it can only miss, never falsely hit.
        base = {"kind": "cluster", "profile": PROFILE}
        assert result_key(base) != result_key({**base, "novel_flag": 1})

    def test_uncacheable_jobs_return_none(self):
        assert result_key({"kind": "mystery", "profile": PROFILE}) is None
        assert result_key({
            "kind": "objective", "profile": PROFILE,
            "weights": object(),
        }) is None

    def test_key_is_stable_bytes(self):
        job = {"kind": "cluster", "profile": PROFILE}
        key = result_key(job)
        assert isinstance(key, bytes) and len(key) == 16
        assert key == result_key(dict(job))


# ---------------------------------------------------------------------- #
# ResultCache: byte-budgeted LRU mechanics
# ---------------------------------------------------------------------- #

class TestResultCache:
    def test_get_put_roundtrip_and_counters(self):
        cache = ResultCache(max_bytes=1 << 20)
        key = result_key({"kind": "cluster", "profile": PROFILE})
        assert cache.get(key) is None
        value = {"labels": np.arange(10)}
        cache.put(key, value)
        assert cache.get(key) is value
        snap = cache.snapshot()
        assert snap["enabled"] is True
        assert (snap["hits"], snap["misses"]) == (1, 1)
        assert snap["insertions"] == 1
        assert snap["entries"] == 1
        assert snap["bytes"] == np.arange(10).nbytes

    def test_none_key_is_inert(self):
        cache = ResultCache()
        assert cache.get(None) is None
        cache.put(None, {"x": 1})
        snap = cache.snapshot()
        assert snap["entries"] == 0
        assert (snap["hits"], snap["misses"]) == (0, 0)

    def test_uncounted_get_leaves_counters_alone(self):
        cache = ResultCache()
        key = b"k" * 16
        assert cache.get(key, count=False) is None
        cache.put(key, {"v": np.zeros(4)})
        assert cache.get(key, count=False) is not None
        snap = cache.snapshot()
        assert (snap["hits"], snap["misses"]) == (0, 0)

    def test_lru_eviction_past_byte_budget(self):
        entry_bytes = np.zeros(128).nbytes  # 1KiB each
        cache = ResultCache(max_bytes=3 * entry_bytes)
        keys = [bytes([i]) * 16 for i in range(4)]
        for key in keys[:3]:
            cache.put(key, {"v": np.zeros(128)})
        cache.get(keys[0])  # refresh: keys[1] is now the LRU
        cache.put(keys[3], {"v": np.zeros(128)})
        assert cache.get(keys[1]) is None  # evicted
        assert cache.get(keys[0]) is not None  # survived the refresh
        assert cache.snapshot()["evictions"] == 1
        assert cache.snapshot()["bytes"] <= 3 * entry_bytes

    def test_capacity_bound(self):
        cache = ResultCache(capacity=2)
        for i in range(3):
            cache.put(bytes([i]) * 16, {"v": np.zeros(2)})
        snap = cache.snapshot()
        assert snap["entries"] == 2
        assert snap["evictions"] == 1
        assert cache.get(bytes([0]) * 16) is None

    def test_oversize_result_is_skipped_not_cached(self):
        cache = ResultCache(max_bytes=64)
        cache.put(b"big!" * 4, {"v": np.zeros(1024)})
        snap = cache.snapshot()
        assert snap["entries"] == 0
        assert snap["skipped_oversize"] == 1
        assert snap["evictions"] == 0

    def test_reinsert_same_key_replaces_accounting(self):
        cache = ResultCache(max_bytes=1 << 20)
        key = b"r" * 16
        cache.put(key, {"v": np.zeros(64)})
        cache.put(key, {"v": np.zeros(32)})
        snap = cache.snapshot()
        assert snap["entries"] == 1
        assert snap["bytes"] == np.zeros(32).nbytes

    def test_summary_renders_hits_and_budget(self):
        cache = ResultCache(max_bytes=1 << 20)
        key = b"s" * 16
        cache.put(key, {"v": np.zeros(4)})
        cache.get(key)
        line = results_summary(cache.snapshot())
        assert "results 1 hits" in line
        assert "of 1.0MB" in line
        assert results_summary({"enabled": False}) == "results off"

    def test_merge_results_snapshots(self):
        a = ResultCache(max_bytes=1 << 20)
        b = ResultCache(max_bytes=1 << 20)
        a.put(b"a" * 16, {"v": np.zeros(4)})
        a.get(b"a" * 16)
        b.get(b"z" * 16)
        merged = merge_results_snapshots(
            [a.snapshot(), b.snapshot(), {"enabled": False}, None]
        )
        assert merged["enabled"] is True
        assert merged["hits"] == 1
        assert merged["misses"] == 1
        assert merged["entries"] == 1
        assert merged["max_bytes"] == 2 << 20
        assert merge_results_snapshots([])["enabled"] is False


# ---------------------------------------------------------------------- #
# Live daemon: hits are bit-identical to cold recomputation
# ---------------------------------------------------------------------- #

@pytest.fixture()
def daemon():
    with ServeDaemon(ServeConfig(bind="127.0.0.1:0", workers=2)) as live:
        yield live


@pytest.fixture()
def client(daemon):
    with ServeClient(daemon.address) as live:
        yield live


class TestDaemonBitIdentity:
    def test_objective_hit_bit_identical_to_cold_recompute(
        self, daemon, client
    ):
        weights = simplex_weights(3)
        job = {"kind": "objective", "profile": PROFILE, "weights": weights}
        cold = client.submit(dict(job))
        hit = client.submit(dict(job))
        assert hit.get("cached") is True
        assert "cached" not in cold
        for field in ("value", "eigengap", "connectivity",
                      "regularization", "group_solves"):
            assert hit["result"][field] == cold["result"][field]
        np.testing.assert_array_equal(
            hit["result"]["eigenvalues"], cold["result"]["eigenvalues"]
        )
        # ... and both match a direct cold in-process evaluation.
        mvag = load_profile_mvag(PROFILE, seed=0)
        laplacians, k = prepare_laplacians(mvag, None, SGLAConfig())
        objective = SpectralObjective(
            laplacians, k=k, cache=False,
            solver=SolverContext(warm_start=False),
        )
        assert hit["result"]["value"] == objective(weights)
        assert daemon.stats.total("result_hits") == 1

    def test_cluster_hit_bit_identical(self, daemon, client):
        job = {"kind": "cluster", "profile": PROFILE}
        cold = client.submit(dict(job))
        hit = client.submit(dict(job))
        assert hit.get("cached") is True
        np.testing.assert_array_equal(
            hit["result"]["labels"], cold["result"]["labels"]
        )
        np.testing.assert_array_equal(
            hit["result"]["weights"], cold["result"]["weights"]
        )
        assert (
            hit["result"]["objective_value"]
            == cold["result"]["objective_value"]
        )
        direct = cluster_mvag(
            load_profile_mvag(PROFILE, seed=0), config=SGLAConfig(), seed=0
        )
        np.testing.assert_array_equal(
            hit["result"]["labels"], direct.labels
        )

    def test_embed_hit_bit_identical(self, daemon, client):
        job = {"kind": "embed", "profile": PROFILE, "dim": 8}
        cold = client.submit(dict(job))
        hit = client.submit(dict(job))
        assert hit.get("cached") is True
        np.testing.assert_array_equal(
            hit["result"]["embedding"], cold["result"]["embedding"]
        )
        direct = embed_mvag(
            load_profile_mvag(PROFILE, seed=0), dim=8,
            config=SGLAConfig(), seed=0,
        )
        np.testing.assert_array_equal(
            hit["result"]["embedding"], direct.embedding
        )

    def test_different_requests_do_not_collide(self, client):
        a = client.submit({
            "kind": "objective", "profile": PROFILE,
            "weights": simplex_weights(0),
        })
        b = client.submit({
            "kind": "objective", "profile": PROFILE,
            "weights": simplex_weights(1),
        })
        assert "cached" not in b
        assert a["result"]["value"] != b["result"]["value"]


class TestDaemonCacheWiring:
    def test_hits_surface_in_health_and_per_tenant_counter(self, daemon):
        job = {"kind": "cluster", "profile": PROFILE}
        with ServeClient(daemon.address, tenant="acme") as client:
            client.submit(dict(job))
            client.submit(dict(job))
            health = client.health()
        results = health["results"]
        assert results["enabled"] is True
        assert results["hits"] == 1
        assert results["misses"] >= 1
        assert results["entries"] >= 1
        tenant = health["stats"]["tenants"]["acme"]
        assert tenant["result_hits"] == 1
        assert health["stats"]["totals"]["result_hits"] == 1
        assert "result-cache hits" in daemon.stats.summary()

    def test_disabled_cache_recomputes_every_request(self):
        config = ServeConfig(
            bind="127.0.0.1:0", workers=1, result_cache=False
        )
        with ServeDaemon(config) as daemon:
            assert daemon.results is None
            with ServeClient(daemon.address) as client:
                job = {"kind": "cluster", "profile": PROFILE}
                first = client.submit(dict(job))
                second = client.submit(dict(job))
                health = client.health()
        assert "cached" not in first and "cached" not in second
        # Determinism holds regardless: recompute == first, bitwise.
        np.testing.assert_array_equal(
            first["result"]["labels"], second["result"]["labels"]
        )
        assert health["results"] == {"enabled": False}
        assert health["stats"]["totals"]["result_hits"] == 0

    def test_worker_side_second_chance_hit(self):
        # Two identical requests admitted before either computes
        # (workers held, batching off): the first executes and inserts,
        # the second is answered by the executor's second-chance lookup
        # without recomputing.
        config = ServeConfig(
            bind="127.0.0.1:0", workers=1, batch_limit=1
        )
        with ServeDaemon(config) as daemon:
            assert daemon.hold_workers()
            job = {"kind": "cluster", "profile": PROFILE}
            replies = [None, None]

            def submit(index):
                with ServeClient(daemon.address) as c:
                    replies[index] = c.submit(dict(job))

            threads = [
                threading.Thread(target=submit, args=(i,))
                for i in range(2)
            ]
            for thread in threads:
                thread.start()
            assert wait_for(lambda: daemon.queue.depth == 2)
            daemon.worker_gate.set()
            for thread in threads:
                thread.join(timeout=60)
            assert daemon.stats.total("result_hits") == 1
            assert daemon.stats.total("completed") == 2
            np.testing.assert_array_equal(
                replies[0]["result"]["labels"],
                replies[1]["result"]["labels"],
            )
            # Exactly one execution populated the cache.
            assert daemon.results.snapshot()["insertions"] == 1

    def test_hit_still_pays_admission_control(self):
        # The cache is consulted *after* admission: a draining daemon
        # refuses a would-be hit like any other request.
        with ServeDaemon(ServeConfig(bind="127.0.0.1:0")) as daemon:
            job = {"kind": "cluster", "profile": PROFILE}
            with ServeClient(daemon.address) as client:
                client.submit(dict(job))
                daemon.drain()
                from repro.utils.errors import ServerDraining

                with pytest.raises(ServerDraining):
                    client.submit(dict(job))

    def test_spawned_daemon_flags(self):
        spawned = spawn_daemon(
            argv_extra=["--no-result-cache", "--max-results-mb", "16"]
        )
        try:
            with ServeClient(spawned.address) as client:
                health = client.health()
            assert health["results"] == {"enabled": False}
        finally:
            spawned.kill()

    def test_serve_stats_cli_renders_results_line(self, daemon):
        job = {"kind": "cluster", "profile": PROFILE}
        with ServeClient(daemon.address) as client:
            client.submit(dict(job))
            client.submit(dict(job))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "serve-stats",
             daemon.address],
            capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert "results 1 hits" in proc.stdout
        assert "result-cache hits" in proc.stdout
