"""Tests for the timing utilities."""

import time

from repro.utils.timer import Timer, timed


class TestTimer:
    def test_accumulates(self):
        timer = Timer()
        with timer.section("work"):
            time.sleep(0.01)
        with timer.section("work"):
            time.sleep(0.01)
        assert timer.total("work") >= 0.02

    def test_unknown_section_zero(self):
        assert Timer().total("nothing") == 0.0

    def test_sections_independent(self):
        timer = Timer()
        with timer.section("a"):
            pass
        with timer.section("b"):
            time.sleep(0.005)
        assert timer.total("b") >= timer.total("a")

    def test_summary_contains_sections(self):
        timer = Timer()
        with timer.section("eigensolve"):
            pass
        assert "eigensolve" in timer.summary()

    def test_exception_still_recorded(self):
        timer = Timer()
        try:
            with timer.section("broken"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert timer.total("broken") >= 0.0
        assert "broken" in timer.sections


class TestTimed:
    def test_records_seconds(self):
        with timed() as record:
            time.sleep(0.005)
        assert record["seconds"] >= 0.005

    def test_records_on_exception(self):
        try:
            with timed() as record:
                raise ValueError("boom")
        except ValueError:
            pass
        assert record["seconds"] is not None
