"""Tests for the clustering metrics (Acc, F1, NMI, ARI, Purity)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.clustering_metrics import (
    accuracy,
    adjusted_rand_index,
    clustering_report,
    contingency_matrix,
    macro_f1,
    normalized_mutual_information,
    purity,
)

label_arrays = st.integers(min_value=10, max_value=60).flatmap(
    lambda n: st.tuples(
        st.lists(st.integers(0, 4), min_size=n, max_size=n),
        st.lists(st.integers(0, 4), min_size=n, max_size=n),
    )
)


class TestContingency:
    def test_counts(self):
        matrix = contingency_matrix([0, 0, 1, 1], [0, 1, 1, 1])
        np.testing.assert_array_equal(matrix, [[1, 1], [0, 2]])

    def test_arbitrary_label_values(self):
        matrix = contingency_matrix([10, 10, 42], [7, 7, -3])
        assert matrix.sum() == 3


class TestAccuracy:
    def test_perfect(self):
        assert accuracy([0, 1, 2, 0], [0, 1, 2, 0]) == 1.0

    def test_permuted_labels_still_perfect(self):
        assert accuracy([0, 0, 1, 1], [1, 1, 0, 0]) == 1.0

    def test_hand_computed(self):
        # Best matching fixes 3 of 4 points.
        assert accuracy([0, 0, 1, 1], [0, 1, 1, 1]) == pytest.approx(0.75)

    def test_more_clusters_than_classes(self):
        value = accuracy([0, 0, 1, 1], [0, 1, 2, 3])
        assert value == pytest.approx(0.5)


class TestMacroF1:
    def test_perfect(self):
        assert macro_f1([0, 1, 1], [1, 0, 0]) == 1.0

    def test_hand_computed(self):
        # After matching: class 0 has tp=2 fp=1 fn=0 -> f1=0.8;
        # class 1 has tp=1 fp=0 fn=1 -> f1=2/3.
        value = macro_f1([0, 0, 1, 1], [0, 0, 0, 1])
        assert value == pytest.approx((0.8 + 2 / 3) / 2)

    def test_unmatched_cluster_counts_as_fp(self):
        value = macro_f1([0, 0, 0, 0], [0, 0, 1, 1])
        assert 0 < value < 1


class TestNmi:
    def test_perfect(self):
        assert normalized_mutual_information([0, 1, 1], [5, 2, 2]) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 2, 2000)
        b = rng.integers(0, 2, 2000)
        assert normalized_mutual_information(a, b) < 0.01

    def test_single_cluster_each(self):
        assert normalized_mutual_information([0, 0], [1, 1]) == 1.0

    def test_trivial_vs_informative(self):
        assert normalized_mutual_information([0, 1, 0, 1], [0, 0, 0, 0]) == 0.0

    def test_symmetric(self):
        a = [0, 0, 1, 1, 2]
        b = [0, 1, 1, 2, 2]
        assert normalized_mutual_information(a, b) == pytest.approx(
            normalized_mutual_information(b, a)
        )


class TestAri:
    def test_perfect(self):
        assert adjusted_rand_index([0, 1, 2], [2, 0, 1]) == pytest.approx(1.0)

    def test_independent_near_zero(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 3, 3000)
        b = rng.integers(0, 3, 3000)
        assert abs(adjusted_rand_index(a, b)) < 0.02

    def test_hand_computed(self):
        # Classic example: ARI of this split is 0.24242...
        truth = [0, 0, 0, 1, 1, 1]
        pred = [0, 0, 1, 1, 2, 2]
        assert adjusted_rand_index(truth, pred) == pytest.approx(0.2424, abs=1e-3)

    def test_can_be_negative(self):
        truth = [0, 1, 0, 1]
        pred = [0, 0, 1, 1]
        assert adjusted_rand_index(truth, pred) < 0


class TestPurity:
    def test_perfect(self):
        assert purity([0, 1, 1], [1, 0, 0]) == 1.0

    def test_hand_computed(self):
        assert purity([0, 0, 1, 1], [0, 0, 0, 1]) == pytest.approx(0.75)

    def test_singleton_clusters_trivially_pure(self):
        assert purity([0, 0, 1, 1], [0, 1, 2, 3]) == 1.0


class TestReport:
    def test_keys(self):
        report = clustering_report([0, 1, 0, 1], [0, 1, 1, 1])
        assert set(report) == {"acc", "f1", "nmi", "ari", "purity"}

    def test_all_in_range(self):
        report = clustering_report([0, 1, 0, 1], [1, 0, 0, 1])
        for name, value in report.items():
            lower = -0.5 if name == "ari" else 0.0
            assert lower <= value <= 1.0


class TestProperties:
    @given(label_arrays)
    @settings(max_examples=40, deadline=None)
    def test_ranges(self, pair):
        truth, pred = pair
        report = clustering_report(truth, pred)
        assert 0.0 <= report["acc"] <= 1.0
        assert 0.0 <= report["f1"] <= 1.0
        assert 0.0 <= report["nmi"] <= 1.0
        assert -0.5 - 1e-9 <= report["ari"] <= 1.0
        assert 0.0 <= report["purity"] <= 1.0

    @given(label_arrays, st.integers(0, 1000))
    @settings(max_examples=30, deadline=None)
    def test_relabeling_invariance(self, pair, seed):
        """Acc/NMI/ARI/Purity are invariant to permuting predicted label
        names.  (Matching-based macro-F1 is excluded: optimal matchings can
        tie on accuracy while differing in per-class F1, so tie-breaking
        makes it only accuracy-invariant, not F1-invariant.)"""
        truth, pred = pair
        pred = np.asarray(pred)
        rng = np.random.default_rng(seed)
        names = np.unique(pred)
        permuted_names = rng.permutation(names)
        mapping = dict(zip(names.tolist(), permuted_names.tolist()))
        relabeled = np.array([mapping[p] for p in pred])
        before = clustering_report(truth, pred)
        after = clustering_report(truth, relabeled)
        for key in ("acc", "nmi", "ari", "purity"):
            assert before[key] == pytest.approx(after[key], abs=1e-9)

    @given(st.lists(st.integers(0, 3), min_size=5, max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_self_comparison_perfect(self, labels):
        report = clustering_report(labels, labels)
        assert report["acc"] == 1.0
        assert report["purity"] == 1.0
        assert report["ari"] == pytest.approx(1.0)
