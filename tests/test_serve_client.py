"""Regression tests of the client's transparent transport retry.

A byte-level TCP proxy sits between :class:`ServeClient` and a live
daemon and injects the two RETRYABLE failure modes on command: killing
the connection after the daemon has *accepted and answered* (the
mid-reply EOF of a crashing peer) and flipping a payload byte (a
corrupted frame caught by the keyed digest).  Idempotent traffic must
survive both invisibly; non-retryable paths must keep failing loudly.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.serve import ServeClient, ServeConfig, ServeDaemon
from repro.serve.client import IDEMPOTENT_KINDS, RETRYABLE_ERRORS
from repro.shard.remote import FrameCorrupted
from repro.utils.errors import ServeError

PROFILE = "rm_small"
R = 11


def make_job():
    return {
        "kind": "objective", "profile": PROFILE, "k": 2,
        "weights": np.full(R, 1.0 / R),
    }


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    while n:
        chunk = sock.recv(n)
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        chunks.append(chunk)
        n -= len(chunk)
    return b"".join(chunks)


def _read_frame_bytes(sock: socket.socket) -> bytes:
    # MAGIC(4) | LENGTH(8, big-endian) | DIGEST(16) | BODY — see
    # repro.shard.remote; the proxy relays frames without decoding them.
    header = _recv_exact(sock, 12)
    length = int.from_bytes(header[4:12], "big")
    return header + _recv_exact(sock, 16 + length)


class FlakyProxy:
    """Frame-aware proxy that sabotages replies on a scripted plan.

    Each entry in ``plan`` governs one request/reply exchange, in
    order: ``"ok"`` relays intact, ``"eof"`` reads the daemon's reply
    then closes the client side without relaying it (the request WAS
    executed — exactly the case where blind retry of a mutation would
    double-apply), ``"corrupt"`` flips the last body byte so the
    client's digest check fails.  Exchanges beyond the plan pass clean.
    """

    def __init__(self, upstream: str, plan):
        host, port = upstream.rsplit(":", 1)
        self.upstream = (host, int(port))
        self.plan = list(plan)
        self.served = []  # actions actually taken, in order
        self._lock = threading.Lock()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.address = "127.0.0.1:%d" % self._listener.getsockname()[1]
        self._stopping = False
        self._thread = threading.Thread(target=self._accept_loop, daemon=True)
        self._thread.start()

    def _next_action(self) -> str:
        with self._lock:
            action = self.plan.pop(0) if self.plan else "ok"
            self.served.append(action)
            return action

    def _accept_loop(self) -> None:
        while not self._stopping:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._handle, args=(client,), daemon=True
            ).start()

    def _handle(self, client: socket.socket) -> None:
        upstream = None
        try:
            upstream = socket.create_connection(self.upstream, 10.0)
            while True:
                request = _read_frame_bytes(client)
                upstream.sendall(request)
                reply = _read_frame_bytes(upstream)
                action = self._next_action()
                if action == "eof":
                    client.close()
                    return
                if action == "corrupt":
                    reply = reply[:-1] + bytes([reply[-1] ^ 0xFF])
                client.sendall(reply)
        except (ConnectionError, OSError):
            pass
        finally:
            for sock in (client, upstream):
                if sock is not None:
                    try:
                        sock.close()
                    except OSError:
                        pass

    def close(self) -> None:
        self._stopping = True
        try:
            self._listener.close()
        except OSError:
            pass

    def __enter__(self) -> "FlakyProxy":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@pytest.fixture(scope="module")
def daemon():
    with ServeDaemon(ServeConfig(bind="127.0.0.1:0", workers=2)) as d:
        yield d


class TestTransparentRetry:
    def test_mid_reply_connection_kill_is_invisible(self, daemon):
        with ServeClient(daemon.address) as direct:
            expected = direct.submit(make_job())["result"]
        with FlakyProxy(daemon.address, ["eof"]) as proxy:
            with ServeClient(proxy.address, retries=2) as client:
                reply = client.submit(make_job())
                assert reply["result"]["value"] == expected["value"]
                assert np.array_equal(
                    reply["result"]["eigenvalues"],
                    expected["eigenvalues"],
                )
                assert client.retried == 1
                assert proxy.served == ["eof", "ok"]

    def test_corrupted_frame_is_invisible(self, daemon):
        with FlakyProxy(daemon.address, ["corrupt"]) as proxy:
            with ServeClient(proxy.address, retries=2) as client:
                reply = client.submit(make_job())
                assert reply["ok"] is True
                assert client.retried == 1
                assert proxy.served == ["corrupt", "ok"]

    def test_back_to_back_failures_within_budget(self, daemon):
        with FlakyProxy(daemon.address, ["eof", "corrupt"]) as proxy:
            with ServeClient(proxy.address, retries=2) as client:
                reply = client.submit(make_job())
                assert reply["ok"] is True
                assert client.retried == 2

    def test_retries_exhausted_raise_the_transport_error(self, daemon):
        with FlakyProxy(daemon.address, ["eof"] * 3) as proxy:
            with ServeClient(proxy.address, retries=2) as client:
                with pytest.raises(RETRYABLE_ERRORS):
                    client.submit(make_job())
                assert client.retried == 2

    def test_health_ops_retry(self, daemon):
        with FlakyProxy(daemon.address, ["eof"]) as proxy:
            with ServeClient(proxy.address, retries=1) as client:
                health = client.health()
                assert health["ok"] is True
                assert client.retried == 1

    def test_ping_retries(self, daemon):
        with FlakyProxy(daemon.address, ["corrupt"]) as proxy:
            with ServeClient(proxy.address, retries=1) as client:
                assert client.ping() is True
                assert client.retried == 1


class TestRetryBoundaries:
    def test_non_retryable_request_fails_loud(self, daemon):
        with FlakyProxy(daemon.address, ["eof"]) as proxy:
            with ServeClient(proxy.address, retries=2) as client:
                with pytest.raises(ConnectionError):
                    client.request({"op": "stats"}, retryable=False)
                assert client.retried == 0

    def test_unknown_job_kind_is_not_retried(self):
        # the retry gate is the kind allowlist, independent of the wire
        assert "objective" in IDEMPOTENT_KINDS
        assert "mutate_state" not in IDEMPOTENT_KINDS

    def test_zero_retries_disables(self, daemon):
        with FlakyProxy(daemon.address, ["eof"]) as proxy:
            with ServeClient(proxy.address, retries=0) as client:
                with pytest.raises(ConnectionError):
                    client.submit(make_job())
                assert client.retried == 0

    def test_negative_retries_rejected(self, daemon):
        with pytest.raises(ServeError):
            ServeClient(daemon.address, retries=-1)

    def test_retry_is_bounded_in_time_and_attempts(self, daemon):
        # every attempt fails: the retry loop stops at whichever runs
        # out first — the attempt budget or the overall timeout budget.
        with FlakyProxy(daemon.address, ["eof"] * 100) as proxy:
            with ServeClient(proxy.address, retries=10) as client:
                started = time.monotonic()
                with pytest.raises(
                    (socket.timeout, ConnectionError, OSError)
                ):
                    client.submit(make_job(), deadline=0.5)
                assert time.monotonic() - started < 30.0
                assert client.retried <= 10

    def test_structured_errors_never_retried(self, daemon):
        # a typed error reply travels a healthy connection: no resend
        with FlakyProxy(daemon.address, []) as proxy:
            with ServeClient(proxy.address, retries=2) as client:
                with pytest.raises(Exception) as excinfo:
                    client.submit({
                        "kind": "objective", "profile": PROFILE, "k": 2,
                        "weights": np.full(R, 1.0 / R),
                        "config": {"bogus_knob": 1},
                    })
                assert not isinstance(excinfo.value, FrameCorrupted)
                assert client.retried == 0
