"""Tests for the from-scratch k-means."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.kmeans import kmeans
from repro.evaluation.clustering_metrics import adjusted_rand_index
from repro.utils.errors import ValidationError


def gaussian_blobs(k, per_cluster, spread=0.05, seed=0):
    rng = np.random.default_rng(seed)
    centers = rng.standard_normal((k, 3)) * 5.0
    points = np.vstack(
        [
            centers[c] + spread * rng.standard_normal((per_cluster, 3))
            for c in range(k)
        ]
    )
    labels = np.repeat(np.arange(k), per_cluster)
    return points, labels


class TestCorrectness:
    def test_separated_blobs_recovered(self):
        points, labels = gaussian_blobs(4, 25, seed=1)
        result = kmeans(points, 4, seed=0)
        assert adjusted_rand_index(labels, result.labels) == pytest.approx(1.0)

    def test_inertia_is_consistent(self):
        points, _ = gaussian_blobs(3, 20, seed=2)
        result = kmeans(points, 3, seed=0)
        manual = sum(
            np.sum((points[result.labels == c] - center) ** 2)
            for c, center in enumerate(result.centers)
        )
        assert result.inertia == pytest.approx(manual, rel=1e-8)

    def test_k_equals_one(self):
        points, _ = gaussian_blobs(2, 10)
        result = kmeans(points, 1, seed=0)
        assert set(result.labels) == {0}
        np.testing.assert_allclose(result.centers[0], points.mean(axis=0))

    def test_k_equals_n(self):
        points = np.arange(10, dtype=float).reshape(5, 2) * 10
        result = kmeans(points, 5, n_init=3, seed=0)
        assert len(set(result.labels)) == 5
        assert result.inertia == pytest.approx(0.0, abs=1e-12)

    def test_no_empty_clusters(self):
        rng = np.random.default_rng(3)
        points = rng.standard_normal((60, 2))
        result = kmeans(points, 8, seed=1)
        assert len(set(result.labels)) == 8

    def test_duplicate_points(self):
        points = np.ones((20, 3))
        result = kmeans(points, 3, seed=0)
        assert result.inertia == pytest.approx(0.0)


class TestDeterminismAndInit:
    def test_deterministic_given_seed(self):
        points, _ = gaussian_blobs(3, 15, seed=4)
        a = kmeans(points, 3, seed=7)
        b = kmeans(points, 3, seed=7)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_kmeanspp_not_worse_than_random(self):
        points, _ = gaussian_blobs(5, 20, spread=0.5, seed=5)
        plus = kmeans(points, 5, init="k-means++", n_init=3, seed=0)
        random = kmeans(points, 5, init="random", n_init=3, seed=0)
        assert plus.inertia <= random.inertia * 1.5

    def test_more_restarts_never_worse(self):
        points, _ = gaussian_blobs(4, 15, spread=1.5, seed=6)
        one = kmeans(points, 4, n_init=1, seed=0)
        many = kmeans(points, 4, n_init=10, seed=0)
        assert many.inertia <= one.inertia + 1e-9


class TestValidation:
    def test_bad_k(self):
        with pytest.raises(ValidationError):
            kmeans(np.ones((5, 2)), 0)
        with pytest.raises(ValidationError):
            kmeans(np.ones((5, 2)), 6)

    def test_bad_init(self):
        with pytest.raises(ValidationError):
            kmeans(np.ones((5, 2)), 2, init="magic")

    def test_bad_n_init(self):
        with pytest.raises(ValidationError):
            kmeans(np.ones((5, 2)), 2, n_init=0)

    def test_1d_rejected(self):
        with pytest.raises(ValidationError):
            kmeans(np.ones(5), 2)


class TestProperties:
    @given(
        st.integers(min_value=2, max_value=5),
        st.integers(min_value=10, max_value=40),
        st.integers(0, 100_000),
    )
    @settings(max_examples=15, deadline=None)
    def test_labels_in_range_and_inertia_nonnegative(self, k, n, seed):
        rng = np.random.default_rng(seed)
        points = rng.standard_normal((n, 3))
        result = kmeans(points, k, n_init=2, seed=seed)
        assert result.labels.shape == (n,)
        assert set(result.labels) <= set(range(k))
        assert result.inertia >= 0.0
