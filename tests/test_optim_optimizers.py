"""Tests for the derivative-free optimizers (cobyla, nelder_mead, driver)."""

import numpy as np
import pytest

from repro.optim.cobyla import LinearTrustRegion
from repro.optim.driver import BACKENDS, minimize_on_simplex
from repro.optim.nelder_mead import nelder_mead_simplex
from repro.optim.simplex import capped_simplex_violation, project_to_simplex
from repro.utils.errors import ValidationError


def quadratic_full(target):
    """Objective over full weight vectors, minimized at ``target``."""
    target = np.asarray(target)

    def func(weights):
        return float(np.sum((weights - target) ** 2))

    return func


class TestLinearTrustRegion:
    def test_minimizes_quadratic_interior(self):
        target = np.array([0.3, 0.5])  # reduced coordinates, feasible

        def func(u):
            return float(np.sum((u - target) ** 2))

        result = LinearTrustRegion(rho_end=1e-4, max_evaluations=400).minimize(
            func, np.array([0.1, 0.1])
        )
        np.testing.assert_allclose(result["x"], target, atol=5e-3)

    def test_respects_constraints(self):
        evaluated = []

        def func(u):
            evaluated.append(u.copy())
            return float(np.sum(u))

        LinearTrustRegion(max_evaluations=100).minimize(func, np.array([0.4, 0.4]))
        for point in evaluated:
            assert capped_simplex_violation(point) < 1e-9

    def test_boundary_optimum(self):
        # Minimum at the origin vertex of the capped simplex.
        def func(u):
            return float(np.sum(u))

        result = LinearTrustRegion(rho_end=1e-4, max_evaluations=300).minimize(
            func, np.array([0.3, 0.3])
        )
        assert result["fun"] < 2e-3

    def test_zero_dim(self):
        result = LinearTrustRegion().minimize(lambda u: 1.23, np.empty(0))
        assert result["fun"] == 1.23
        assert result["converged"]

    def test_invalid_radii(self):
        with pytest.raises(ValidationError):
            LinearTrustRegion(rho_start=0.1, rho_end=0.2)
        with pytest.raises(ValidationError):
            LinearTrustRegion(rho_start=-1.0)

    def test_evaluation_budget_respected(self):
        calls = [0]

        def func(u):
            calls[0] += 1
            return float(np.sum(u * u))

        LinearTrustRegion(max_evaluations=30).minimize(func, np.array([0.2, 0.2]))
        assert calls[0] <= 30

    def test_history_recorded(self):
        result = LinearTrustRegion(max_evaluations=50).minimize(
            lambda u: float(np.sum(u * u)), np.array([0.2, 0.2])
        )
        assert len(result["history"]) == result["n_evaluations"]


class TestNelderMead:
    def test_minimizes_quadratic(self):
        target = np.array([0.25, 0.4])

        def func(u):
            return float(np.sum((u - target) ** 2))

        result = nelder_mead_simplex(func, np.array([0.1, 0.1]), xatol=1e-5,
                                     max_evaluations=500)
        np.testing.assert_allclose(result["x"], target, atol=1e-2)

    def test_feasibility(self):
        evaluated = []

        def func(u):
            evaluated.append(u.copy())
            return float(-np.sum(u))  # pushes toward the sum cap

        nelder_mead_simplex(func, np.array([0.4, 0.4]), max_evaluations=200)
        for point in evaluated:
            assert capped_simplex_violation(point) < 1e-9

    def test_bad_step_rejected(self):
        with pytest.raises(ValidationError):
            nelder_mead_simplex(lambda u: 0.0, np.array([0.2]), initial_step=0.0)


class TestMinimizeOnSimplex:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_all_backends_reach_optimum(self, backend):
        target = project_to_simplex(np.array([0.5, 0.2, 0.3]))
        result = minimize_on_simplex(
            quadratic_full(target),
            r=3,
            backend=backend,
            rho_end=1e-5,
            max_evaluations=500,
        )
        np.testing.assert_allclose(result.weights, target, atol=2e-2)
        assert abs(result.weights.sum() - 1.0) < 1e-9

    def test_r_equal_one(self):
        result = minimize_on_simplex(lambda w: float(w[0]), r=1)
        np.testing.assert_allclose(result.weights, [1.0])
        assert result.n_evaluations == 1

    def test_unknown_backend(self):
        with pytest.raises(ValidationError):
            minimize_on_simplex(lambda w: 0.0, r=2, backend="nope")

    def test_x0_length_checked(self):
        with pytest.raises(ValidationError):
            minimize_on_simplex(lambda w: 0.0, r=3, x0=[0.5, 0.5])

    def test_history_full_weights(self):
        result = minimize_on_simplex(
            quadratic_full([0.6, 0.4]), r=2, max_evaluations=40
        )
        for weights, _ in result.history:
            assert weights.shape == (2,)
            assert abs(weights.sum() - 1.0) < 1e-9

    def test_backends_agree(self):
        """Our from-scratch optimizer matches scipy's COBYLA optimum."""
        target = np.array([0.1, 0.6, 0.3])
        ours = minimize_on_simplex(
            quadratic_full(target), r=3, backend="trust-linear",
            rho_end=1e-5, max_evaluations=500,
        )
        scipys = minimize_on_simplex(
            quadratic_full(target), r=3, backend="scipy-cobyla",
            rho_end=1e-7, max_evaluations=500,
        )
        assert abs(ours.value - scipys.value) < 1e-2

    def test_callback_invoked(self):
        seen = []
        minimize_on_simplex(
            quadratic_full([0.5, 0.5]),
            r=2,
            max_evaluations=50,
            callback=lambda w, v: seen.append(v),
        )
        assert seen, "callback should fire at least once"
