"""Tests for spectral clustering and the Yu-Shi discretization."""

import numpy as np
import pytest

from repro.cluster.discretize import discretize
from repro.cluster.spectral import spectral_clustering, spectral_embedding_matrix
from repro.core.laplacian import normalized_laplacian
from repro.evaluation.clustering_metrics import adjusted_rand_index
from repro.utils.errors import ValidationError


class TestDiscretize:
    def test_one_hot_embedding_recovered(self):
        """A perfect indicator embedding discretizes to itself."""
        indicator = np.zeros((30, 3))
        labels = np.repeat(np.arange(3), 10)
        indicator[np.arange(30), labels] = 1.0
        predicted = discretize(indicator, seed=0)
        assert adjusted_rand_index(labels, predicted) == pytest.approx(1.0)

    def test_rotated_embedding_recovered(self):
        """Discretization must undo an arbitrary orthogonal rotation."""
        rng = np.random.default_rng(1)
        indicator = np.zeros((45, 3))
        labels = np.repeat(np.arange(3), 15)
        indicator[np.arange(45), labels] = 1.0
        rotation, _ = np.linalg.qr(rng.standard_normal((3, 3)))
        predicted = discretize(indicator @ rotation, seed=0)
        assert adjusted_rand_index(labels, predicted) == pytest.approx(1.0)

    def test_single_column(self):
        predicted = discretize(np.ones((10, 1)))
        assert set(predicted) == {0}

    def test_invalid_shapes(self):
        with pytest.raises(ValidationError):
            discretize(np.ones(5))
        with pytest.raises(ValidationError):
            discretize(np.ones((2, 5)))

    def test_deterministic(self):
        rng = np.random.default_rng(2)
        embedding = rng.standard_normal((40, 4))
        a = discretize(embedding, seed=9)
        b = discretize(embedding, seed=9)
        np.testing.assert_array_equal(a, b)


class TestSpectralClustering:
    def test_ring_of_cliques(self, ring_of_cliques):
        adjacency, labels = ring_of_cliques
        laplacian = normalized_laplacian(adjacency)
        predicted = spectral_clustering(laplacian, 4, seed=0)
        assert adjusted_rand_index(labels, predicted) == pytest.approx(1.0)

    def test_kmeans_assignment_matches(self, ring_of_cliques):
        adjacency, labels = ring_of_cliques
        laplacian = normalized_laplacian(adjacency)
        predicted = spectral_clustering(laplacian, 4, assign="kmeans", seed=0)
        assert adjusted_rand_index(labels, predicted) == pytest.approx(1.0)

    def test_k_one(self, ring_of_cliques):
        adjacency, _ = ring_of_cliques
        laplacian = normalized_laplacian(adjacency)
        predicted = spectral_clustering(laplacian, 1)
        assert set(predicted) == {0}

    def test_invalid_assignment(self, ring_of_cliques):
        adjacency, _ = ring_of_cliques
        laplacian = normalized_laplacian(adjacency)
        with pytest.raises(ValidationError):
            spectral_clustering(laplacian, 2, assign="votes")

    def test_invalid_k(self, ring_of_cliques):
        adjacency, _ = ring_of_cliques
        with pytest.raises(ValidationError):
            spectral_clustering(normalized_laplacian(adjacency), 0)


class TestSpectralEmbeddingMatrix:
    def test_shape(self, ring_of_cliques):
        adjacency, _ = ring_of_cliques
        laplacian = normalized_laplacian(adjacency)
        embedding = spectral_embedding_matrix(laplacian, 4)
        assert embedding.shape == (adjacency.shape[0], 4)

    def test_drop_first(self, ring_of_cliques):
        adjacency, _ = ring_of_cliques
        laplacian = normalized_laplacian(adjacency)
        kept = spectral_embedding_matrix(laplacian, 3, drop_first=True)
        full = spectral_embedding_matrix(laplacian, 4, drop_first=False)
        # Dropping the trivial eigenvector shifts the window by one.
        assert kept.shape == (adjacency.shape[0], 3)
        # Same subspace: compare spans via projection Frobenius norm.
        overlap = np.linalg.norm(kept.T @ full[:, 1:4])
        assert overlap == pytest.approx(3.0**0.5, rel=0.2)
