"""Failure-injection tests: degenerate inputs across the public API.

These exercise the edge cases DESIGN.md §7 calls out: empty views,
isolated nodes, k at the boundary, degenerate eigengaps, NaN attributes,
and single-cluster data — the library must fail loudly with a
:class:`repro.utils.errors.ValidationError` or degrade gracefully, never
crash with a bare numpy/scipy error.
"""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.cluster.spectral import spectral_clustering
from repro.core.laplacian import normalized_laplacian
from repro.core.mvag import MVAG
from repro.core.objective import SpectralObjective
from repro.core.sgla import SGLA
from repro.core.sgla_plus import SGLAPlus
from repro.datasets.generator import generate_mvag
from repro.evaluation.clustering_metrics import clustering_report
from repro.utils.errors import ReproError, ValidationError


def ring(n):
    adjacency = sp.lil_matrix((n, n))
    for i in range(n):
        adjacency[i, (i + 1) % n] = adjacency[(i + 1) % n, i] = 1.0
    return adjacency.tocsr()


class TestEmptyAndIsolated:
    def test_empty_graph_view(self):
        """A view with zero edges is legal; its Laplacian is the identity."""
        mvag = MVAG(
            graph_views=[sp.csr_matrix((20, 20)), ring(20)],
            labels=np.repeat([0, 1], 10),
        )
        result = SGLAPlus().fit(mvag, k=2)
        assert np.isfinite(result.objective_value)

    def test_isolated_nodes_survive_pipeline(self):
        """Nodes isolated in every view must not break clustering."""
        adjacency = ring(20).tolil()
        adjacency[5, :] = 0
        adjacency[:, 5] = 0
        mvag = MVAG(graph_views=[adjacency.tocsr()])
        laplacian = normalized_laplacian(mvag.graph_views[0])
        labels = spectral_clustering(laplacian, 2, seed=0)
        assert labels.shape == (20,)

    def test_all_views_empty_objective(self):
        laplacian = normalized_laplacian(sp.csr_matrix((10, 10)))
        objective = SpectralObjective([laplacian], k=2)
        # Identity Laplacian: all eigenvalues 1, eigengap ratio 1.
        parts = objective.components([1.0])
        assert parts.eigengap == pytest.approx(1.0)


class TestBoundaryK:
    def test_k_equals_n_minus_one(self):
        mvag = MVAG(graph_views=[ring(8)], labels=np.arange(8) % 7)
        result = SGLA(t_max=3).fit(mvag, k=7)
        assert result.weights.shape == (1,)

    def test_k_too_large_rejected(self):
        mvag = MVAG(graph_views=[ring(6)])
        with pytest.raises(ValidationError):
            SGLA().fit(mvag, k=6)  # needs k+1 = 7 eigenvalues > n

    def test_single_cluster_report(self):
        report = clustering_report([0] * 10, [0] * 10)
        assert report["acc"] == 1.0


class TestDegenerateSpectra:
    def test_disconnected_aggregation_eigengap_guarded(self):
        """k+1 components make lambda_{k+1} ~ 0; the eigengap guard must
        keep h finite."""
        blocks = sp.block_diag([ring(5)] * 4).tocsr()
        laplacian = normalized_laplacian(blocks)
        objective = SpectralObjective([laplacian], k=3)
        value = objective([1.0])
        assert np.isfinite(value)

    def test_identical_views(self):
        laplacian = normalized_laplacian(ring(12))
        result = SGLAPlus().fit([laplacian, laplacian, laplacian], k=2)
        assert np.isfinite(result.objective_value)


class TestBadInputsFailLoudly:
    def test_nan_attribute_rejected_at_construction(self):
        features = np.ones((10, 3))
        features[2, 1] = np.nan
        with pytest.raises(ReproError):
            MVAG(graph_views=[ring(10)], attribute_views=[features])

    def test_mismatched_view_sizes_rejected(self):
        with pytest.raises(ReproError):
            MVAG(graph_views=[ring(10), ring(12)])

    def test_generator_rejects_tiny_n(self):
        with pytest.raises(ValidationError):
            generate_mvag(n_nodes=3, n_clusters=2)


class TestShardedEntryPoints:
    """Degenerate inputs through the *sharded* dispatch paths.

    The contract (DESIGN.md §11): a caller bug surfacing inside a shard
    worker — NaN attributes, degenerate views — must raise the same
    :class:`ValidationError` in the parent as the in-process path, with
    no retries burned on it and the pool still healthy afterwards.
    """

    def _sharded(self):
        from repro.shard import ShardContext

        return ShardContext(workers=2, min_items=0, min_bytes=0)

    def test_nan_attributes_raise_in_parent_not_poison_pool(self):
        from repro.core.laplacian import build_view_laplacians

        mvag = generate_mvag(
            n_nodes=40, n_clusters=2, graph_view_strengths=[0.8],
            attribute_view_dims=[6], attribute_view_signals=[0.7], seed=0,
        )
        # MVAG validates at construction, so inject the NaN afterwards —
        # exactly the class of corruption a worker would meet first.
        mvag.attribute_views[0][3, 2] = np.nan
        with self._sharded() as shard:
            with pytest.raises(ValidationError, match="NaN"):
                build_view_laplacians(mvag, knn_k=5, shard=shard)
            assert shard.stats.retries == 0  # caller bugs never retry
            # The pool survived: a clean build on the same context works.
            mvag.attribute_views[0][3, 2] = 0.0
            laplacians = build_view_laplacians(mvag, knn_k=5, shard=shard)
            assert len(laplacians) == 2

    def test_empty_attribute_view_is_legal_through_shard(self):
        from repro.core.laplacian import build_view_laplacians

        mvag = MVAG(
            graph_views=[ring(20)],
            attribute_views=[np.zeros((20, 4))],  # all-zero rows: empty
        )
        with self._sharded() as shard:
            sharded = build_view_laplacians(mvag, knn_k=3, shard=shard)
        plain = build_view_laplacians(mvag, knn_k=3)
        for ours, theirs in zip(sharded, plain):
            assert (ours != theirs).nnz == 0

    def test_dynamic_nan_update_rejected_before_dispatch(self):
        from repro.dynamic import DynamicMVAG

        mvag = generate_mvag(
            n_nodes=40, n_clusters=2, graph_view_strengths=[0.8],
            attribute_view_dims=[6], attribute_view_signals=[0.7], seed=0,
        )
        with self._sharded() as shard:
            dynamic = DynamicMVAG(mvag, knn_k=5, shard=shard)
            baseline = [l.copy() for l in dynamic.view_laplacians()]
            with pytest.raises(ValidationError, match="finite|NaN"):
                dynamic.update_attributes(
                    0, 3, [1.0, np.nan, 0.0, 0.0, 0.0, 0.0]
                )
            # The rejected update mutated nothing and poisoned nothing:
            # the stream continues bit-identically.
            for ours, theirs in zip(
                dynamic.view_laplacians(), baseline
            ):
                assert (ours != theirs).nnz == 0
            dynamic.update_attributes(0, 3, [1.0, 0.5, 0, 0, 0, 0])
            assert dynamic.updates_since_snapshot == 1

    def test_dynamic_nonfinite_edge_weight_rejected(self):
        from repro.dynamic import DynamicMVAG
        from repro.dynamic.stream import EdgeUpdate

        mvag = MVAG(graph_views=[ring(12)])
        dynamic = DynamicMVAG(mvag, knn_k=3)
        with pytest.raises(ValidationError, match="finite"):
            dynamic.apply_edge_update(
                EdgeUpdate(view=0, u=1, v=2, weight=float("inf"))
            )


class TestSkewedClusters:
    def test_unbalanced_partition_recovered(self):
        """Moderately skewed clusters: the pipeline should still work.
        (Extreme imbalance is a known normalized-cut failure mode, so the
        generator's balance knob is exercised at a realistic setting.)"""
        mvag = generate_mvag(
            n_nodes=200,
            n_clusters=2,
            graph_view_strengths=[0.9],
            attribute_view_dims=[8],
            attribute_view_signals=[0.7],
            balance=0.6,
            seed=2,
        )
        result = SGLAPlus().fit(mvag)
        labels = spectral_clustering(result.laplacian, 2, seed=0)
        report = clustering_report(mvag.labels, labels)
        assert report["acc"] > 0.8
