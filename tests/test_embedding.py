"""Tests for the embedding substrate: randomized SVD, NetMF, SketchNE."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.laplacian import normalized_laplacian
from repro.datasets.generator import planted_partition_graph
from repro.embedding.netmf import (
    deepwalk_matrix_exact,
    netmf_embedding,
    netmf_from_laplacian,
)
from repro.embedding.sketchne import sketchne_embedding
from repro.embedding.spectral_embedding import spectral_node_embedding
from repro.embedding.svd import exact_truncated_svd, randomized_svd
from repro.evaluation.classification import evaluate_embedding
from repro.utils.errors import ValidationError


def sbm(n=200, k=4, strength=0.85, seed=0):
    labels = np.repeat(np.arange(k), n // k)
    rng = np.random.default_rng(seed)
    adjacency = planted_partition_graph(labels, strength, avg_degree=12, rng=rng)
    return adjacency, labels


class TestRandomizedSvd:
    def test_exact_on_low_rank(self):
        rng = np.random.default_rng(0)
        left = rng.standard_normal((50, 5))
        right = rng.standard_normal((5, 40))
        matrix = left @ right
        u, s, vt = randomized_svd(matrix, rank=5, seed=0)
        np.testing.assert_allclose(u @ np.diag(s) @ vt, matrix, atol=1e-8)

    def test_singular_values_descending(self):
        rng = np.random.default_rng(1)
        matrix = rng.standard_normal((30, 30))
        _, s, _ = randomized_svd(matrix, rank=10, seed=0)
        assert np.all(np.diff(s) <= 1e-10)

    def test_close_to_exact_svd(self):
        rng = np.random.default_rng(2)
        matrix = rng.standard_normal((60, 40))
        _, s_rand, _ = randomized_svd(matrix, rank=5, n_power_iterations=6, seed=0)
        _, s_exact, _ = exact_truncated_svd(matrix, rank=5)
        np.testing.assert_allclose(s_rand, s_exact, rtol=0.05)

    def test_sparse_input(self):
        matrix = sp.random(50, 50, density=0.2, random_state=0)
        u, s, vt = randomized_svd(matrix, rank=4, seed=0)
        assert u.shape == (50, 4)

    def test_rank_clamped(self):
        u, s, vt = randomized_svd(np.eye(5), rank=10, seed=0)
        assert s.shape[0] == 5

    def test_bad_rank(self):
        with pytest.raises(ValidationError):
            randomized_svd(np.eye(5), rank=0)

    @given(st.integers(0, 10_000))
    @settings(max_examples=10, deadline=None)
    def test_reconstruction_error_bounded(self, seed):
        rng = np.random.default_rng(seed)
        base = rng.standard_normal((25, 6)) @ rng.standard_normal((6, 25))
        noise = 1e-6 * rng.standard_normal((25, 25))
        u, s, vt = randomized_svd(base + noise, rank=6, seed=0)
        assert np.linalg.norm(u @ np.diag(s) @ vt - base) < 1e-3


class TestNetMF:
    def test_embedding_shape(self):
        adjacency, _ = sbm()
        embedding = netmf_embedding(adjacency, dim=16, rank=64, seed=0)
        assert embedding.shape == (adjacency.shape[0], 16)
        assert np.all(np.isfinite(embedding))

    def test_classifies_sbm(self):
        adjacency, labels = sbm(seed=3)
        embedding = netmf_embedding(adjacency, dim=16, rank=64, seed=0)
        report = evaluate_embedding(embedding, labels, seed=0)
        assert report["micro_f1"] > 0.9

    def test_spectral_approx_tracks_exact_matrix(self):
        """Full-rank spectral filtering reproduces the exact DeepWalk
        matrix (before log-truncation)."""
        adjacency, _ = sbm(n=60, k=2, seed=4)
        n = adjacency.shape[0]
        from repro.core.eigen import bottom_eigenpairs
        from repro.embedding.netmf import _window_filter
        from repro.utils.sparse import degree_vector

        window = 5
        exact = deepwalk_matrix_exact(adjacency, window=window)
        laplacian = normalized_laplacian(adjacency)
        values, vectors = bottom_eigenpairs(laplacian, n, method="dense")
        degrees = degree_vector(adjacency)
        inv_sqrt = 1.0 / np.sqrt(degrees)
        filtered = _window_filter(1.0 - values, window)
        basis = vectors * inv_sqrt[:, None]
        volume = degrees.sum()
        approx = volume * (basis * filtered[None, :]) @ basis.T
        np.testing.assert_allclose(approx, exact, atol=1e-6)

    def test_from_laplacian(self):
        adjacency, labels = sbm(seed=5)
        laplacian = normalized_laplacian(adjacency)
        embedding = netmf_from_laplacian(laplacian, dim=16, rank=64, seed=0)
        report = evaluate_embedding(embedding, labels, seed=0)
        assert report["micro_f1"] > 0.9

    def test_size_guard(self):
        huge = sp.identity(30000, format="csr")
        with pytest.raises(ValidationError):
            netmf_from_laplacian(huge, dim=8)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValidationError):
            netmf_embedding(sp.csr_matrix((10, 10)), dim=2)


class TestSketchNE:
    def test_shape_and_norms(self):
        adjacency, _ = sbm(seed=6)
        laplacian = normalized_laplacian(adjacency)
        embedding = sketchne_embedding(laplacian, dim=16, seed=0)
        assert embedding.shape == (adjacency.shape[0], 16)
        np.testing.assert_allclose(
            np.linalg.norm(embedding, axis=1), 1.0, atol=1e-8
        )

    def test_classifies_sbm(self):
        adjacency, labels = sbm(seed=7)
        laplacian = normalized_laplacian(adjacency)
        embedding = sketchne_embedding(laplacian, dim=16, seed=0)
        report = evaluate_embedding(embedding, labels, seed=0)
        assert report["micro_f1"] > 0.9

    def test_no_normalization_option(self):
        adjacency, _ = sbm(seed=8)
        laplacian = normalized_laplacian(adjacency)
        embedding = sketchne_embedding(laplacian, dim=8, normalize=False, seed=0)
        norms = np.linalg.norm(embedding, axis=1)
        assert norms.std() > 1e-6  # not all unit norm


class TestSpectralEmbedding:
    def test_shape(self):
        adjacency, _ = sbm(seed=9)
        laplacian = normalized_laplacian(adjacency)
        embedding = spectral_node_embedding(laplacian, dim=8)
        assert embedding.shape == (adjacency.shape[0], 8)

    def test_padding_when_rank_deficient(self):
        tiny = normalized_laplacian(
            sp.csr_matrix(np.ones((6, 6)) - np.eye(6))
        )
        embedding = spectral_node_embedding(tiny, dim=5, drop_first=True)
        assert embedding.shape == (6, 5)
