"""Tests for the from-scratch Lanczos eigensolver."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.eigen import bottom_eigenpairs
from repro.core.laplacian import normalized_laplacian
from repro.core.lanczos import (
    lanczos_bottom_eigenpairs,
    lanczos_top_eigenpairs,
)
from repro.utils.errors import ValidationError


def random_symmetric(n, seed=0):
    """Random symmetric PSD matrix (the solver's documented contract)."""
    rng = np.random.default_rng(seed)
    matrix = rng.standard_normal((n, n))
    return matrix @ matrix.T / n


def sbm_laplacian(n=120, seed=1):
    from repro.datasets.generator import planted_partition_graph

    labels = np.repeat([0, 1, 2], n // 3)
    adjacency = planted_partition_graph(labels, 0.8, 10.0, rng=seed)
    return normalized_laplacian(adjacency)


class TestTopEigenpairs:
    def test_matches_dense_eigh(self):
        matrix = random_symmetric(60, seed=2)
        values, vectors = lanczos_top_eigenpairs(matrix, 5, seed=0)
        exact = np.sort(np.linalg.eigvalsh(matrix))[::-1][:5]
        np.testing.assert_allclose(values, exact, atol=1e-7)

    def test_eigenvector_residuals(self):
        matrix = random_symmetric(50, seed=3)
        values, vectors = lanczos_top_eigenpairs(matrix, 4, seed=0)
        scale = max(abs(values).max(), 1.0)
        for i in range(4):
            residual = matrix @ vectors[:, i] - values[i] * vectors[:, i]
            assert np.linalg.norm(residual) < 1e-5 * scale

    def test_basis_orthonormal(self):
        matrix = random_symmetric(40, seed=4)
        _, vectors = lanczos_top_eigenpairs(matrix, 6, seed=0)
        gram = vectors.T @ vectors
        np.testing.assert_allclose(gram, np.eye(6), atol=1e-8)

    def test_sparse_operator(self):
        matrix = sp.random(200, 200, density=0.05, random_state=5)
        matrix = (matrix + matrix.T) * 0.5
        values, _ = lanczos_top_eigenpairs(matrix, 3, max_subspace=60, seed=0)
        exact = np.sort(np.linalg.eigvalsh(matrix.toarray()))[::-1][:3]
        np.testing.assert_allclose(values, exact, atol=1e-6)

    def test_t_validation(self):
        with pytest.raises(ValidationError):
            lanczos_top_eigenpairs(np.eye(4), 0)

    def test_t_clamped(self):
        values, _ = lanczos_top_eigenpairs(np.eye(4), 10, seed=0)
        assert values.shape[0] == 4


class TestBottomEigenpairs:
    def test_agrees_with_production_solver(self):
        laplacian = sbm_laplacian()
        ours, _ = lanczos_bottom_eigenpairs(laplacian, 4, seed=0)
        production, _ = bottom_eigenpairs(laplacian, 4, method="dense")
        np.testing.assert_allclose(ours, production, atol=1e-6)

    def test_values_sorted_and_bounded(self):
        laplacian = sbm_laplacian(seed=7)
        values, _ = lanczos_bottom_eigenpairs(laplacian, 5, seed=0)
        assert np.all(np.diff(values) >= -1e-12)
        assert values.min() >= 0.0
        assert values.max() <= 2.0

    def test_detects_components(self):
        """Two disconnected cliques -> two (near-)zero bottom eigenvalues."""
        block = np.ones((10, 10)) - np.eye(10)
        adjacency = sp.block_diag([block, block]).tocsr()
        laplacian = normalized_laplacian(adjacency)
        values, _ = lanczos_bottom_eigenpairs(laplacian, 3, seed=0)
        assert values[1] == pytest.approx(0.0, abs=1e-8)
        assert values[2] > 1e-6
