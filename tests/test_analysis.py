"""Tests for t-SNE, separation scores, convergence traces, memory probe."""

import tracemalloc

import numpy as np
import pytest

from repro.analysis.convergence import convergence_trace
from repro.analysis.memory import (
    MemoryBudgetExceeded,
    MemoryTracker,
    peak_rss_mb,
)
from repro.analysis.separation import class_separation, silhouette_score
from repro.analysis.tsne import kl_divergence, tsne
from repro.utils.errors import ReproError, ValidationError


def three_blobs(per=25, separation=8.0, seed=0):
    rng = np.random.default_rng(seed)
    centers = np.array([[0.0, 0], [separation, 0], [0, separation]])
    points = np.vstack(
        [center + rng.standard_normal((per, 2)) for center in centers]
    )
    labels = np.repeat(np.arange(3), per)
    return points, labels


class TestTsne:
    def test_output_shape_and_finite(self):
        points, _ = three_blobs(per=15)
        embedding = tsne(points, dim=2, n_iterations=120, seed=0)
        assert embedding.shape == (45, 2)
        assert np.all(np.isfinite(embedding))

    def test_separates_blobs(self):
        points, labels = three_blobs(per=20, seed=1)
        embedding = tsne(points, dim=2, n_iterations=300, seed=0)
        assert class_separation(embedding, labels) > 1.0

    def test_better_than_random_layout(self):
        points, _ = three_blobs(per=15, seed=2)
        embedding = tsne(points, dim=2, n_iterations=250, seed=0)
        rng = np.random.default_rng(3)
        random_layout = rng.standard_normal(embedding.shape)
        assert kl_divergence(points, embedding) < kl_divergence(
            points, random_layout
        )

    def test_deterministic(self):
        points, _ = three_blobs(per=10, seed=4)
        a = tsne(points, n_iterations=50, seed=5)
        b = tsne(points, n_iterations=50, seed=5)
        np.testing.assert_allclose(a, b)

    def test_too_few_points(self):
        with pytest.raises(ValidationError):
            tsne(np.ones((3, 2)))

    def test_1d_rejected(self):
        with pytest.raises(ValidationError):
            tsne(np.ones(10))


class TestSeparationScores:
    def test_silhouette_separated_blobs_high(self):
        points, labels = three_blobs(separation=12.0, seed=5)
        assert silhouette_score(points, labels) > 0.8

    def test_silhouette_random_near_zero(self):
        rng = np.random.default_rng(6)
        points = rng.standard_normal((90, 2))
        labels = np.repeat(np.arange(3), 30)
        assert abs(silhouette_score(points, labels)) < 0.15

    def test_silhouette_needs_two_classes(self):
        with pytest.raises(ValidationError):
            silhouette_score(np.ones((10, 2)), np.zeros(10, dtype=int))

    def test_silhouette_sampling_cap(self):
        points, labels = three_blobs(per=40, seed=7)
        capped = silhouette_score(points, labels, sample_cap=60, seed=0)
        assert -1.0 <= capped <= 1.0

    def test_class_separation_orders_embeddings(self):
        tight, labels = three_blobs(separation=12.0, seed=8)
        loose, _ = three_blobs(separation=1.0, seed=8)
        assert class_separation(tight, labels) > class_separation(loose, labels)


class TestConvergenceTrace:
    def test_objective_monotone(self, easy_mvag, easy_laplacians):
        from repro.core.sgla import SGLA

        result = SGLA(t_max=25).fit(easy_mvag)
        trace = convergence_trace(result.history)
        assert np.all(np.diff(trace.objective) <= 1e-12)
        assert trace.iterations.shape == trace.objective.shape

    def test_accuracy_series(self, easy_mvag, easy_laplacians):
        from repro.core.sgla import SGLA

        result = SGLA(t_max=12).fit(easy_mvag)
        trace = convergence_trace(
            result.history,
            laplacians=easy_laplacians,
            k=3,
            labels_true=easy_mvag.labels,
            accuracy_stride=4,
        )
        assert trace.accuracy is not None
        assert np.all(np.isfinite(trace.accuracy))
        assert trace.accuracy.max() <= 1.0

    def test_termination_marker_in_range(self, easy_mvag):
        from repro.core.sgla import SGLA

        result = SGLA(t_max=20).fit(easy_mvag)
        trace = convergence_trace(result.history)
        assert 1 <= trace.termination_iteration <= len(result.history)


class TestMemoryProbe:
    def test_positive_and_plausible(self):
        rss = peak_rss_mb()
        assert 10.0 < rss < 1_000_000.0


class TestMemoryTracker:
    def test_measures_growth(self):
        with MemoryTracker(label="alloc") as tracker:
            ballast = np.ones((4_000_000,), dtype=np.float64)  # ~32 MB
            tracker.check("after-alloc")
            del ballast
        assert tracker.baseline_mb is not None
        assert tracker.peak_mb >= tracker.baseline_mb
        assert tracker.growth_mb >= 0.0

    def test_budget_raises_with_label(self):
        with pytest.raises(MemoryBudgetExceeded, match="tiny:phase"):
            with MemoryTracker(budget_mb=1.0, label="tiny") as tracker:
                tracker.check("phase")

    def test_exit_check_gates_region(self):
        # The final __exit__ sample must also enforce the budget (the
        # interpreter alone is far above 1 MB).
        with pytest.raises(MemoryBudgetExceeded):
            with MemoryTracker(budget_mb=1.0, label="exit-gate"):
                pass

    def test_exception_takes_precedence_over_budget(self):
        with pytest.raises(ValueError, match="inner"):
            with MemoryTracker(budget_mb=1.0, label="broken"):
                raise ValueError("inner")

    def test_invalid_budget_rejected(self):
        with pytest.raises(ReproError):
            MemoryTracker(budget_mb=0.0)
        with pytest.raises(ReproError):
            MemoryTracker(budget_mb=-5.0)

    def test_report_dict(self):
        with MemoryTracker(label="reported") as tracker:
            tracker.check()
        report = tracker.report()
        assert report["label"] == "reported"
        assert report["peak_mb"] >= report["baseline_mb"]
        assert report["growth_mb"] == pytest.approx(
            max(0.0, report["peak_mb"] - report["baseline_mb"])
        )
        assert report["budget_mb"] is None
        assert report["alloc_peak_mb"] is None

    def test_trace_allocations(self):
        with MemoryTracker(label="traced", trace_allocations=True) as tracker:
            ballast = np.ones((1_000_000,), dtype=np.float64)  # ~8 MB
            del ballast
        assert tracker.alloc_peak_mb is not None
        assert tracker.alloc_peak_mb > 5.0
        assert not tracemalloc.is_tracing()
