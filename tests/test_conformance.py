"""Cross-backend conformance harness: one differential test matrix.

The codebase now exposes 3 eigensolver backends x 3 neighbor backends x 2
objective evaluation paths, and per-PR parity checks only ever compared
the pair a PR introduced.  This suite sweeps the full combinatorial
surface through the *end-to-end* pipeline (``cluster_mvag`` with SGLA+)
and asserts every combination lands on the same optimum:

* ``|w* - w*_ref| < 1e-6`` pairwise (the objective surfaces differ only
  by eigensolve round-off, so the selected view weights must agree far
  below any decision threshold), and
* identical cluster assignments (discretization runs on
  sign-canonicalized eigenvectors — ``repro.solvers.canonicalize_signs``
  — so fp-level eigensolver differences must not flip labels).

Backend dispatch is part of what is being conformance-tested: at the
matrix fixture's size the registry's own rules route ``rp-forest`` to
``exact`` (n below the forest cutoff) exactly as production dispatch
would; a separate structural test runs the forest for real above the
cutoff, where approximate search changes the graph and only
cluster-level agreement is guaranteed.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.core.pipeline import cluster_mvag
from repro.core.sgla import SGLAConfig
from repro.datasets.generator import generate_mvag
from repro.datasets.running_example import running_example_mvag
from repro.evaluation.clustering_metrics import clustering_report

EIGEN_BACKENDS = ("dense", "lanczos", "chebyshev")
KNN_BACKENDS = ("exact", "exact-f32", "rp-forest")
FAST_PATHS = (True, False)

MATRIX = tuple(
    itertools.product(EIGEN_BACKENDS, KNN_BACKENDS, FAST_PATHS)
)
REFERENCE = ("dense", "exact", True)

#: pairwise weight agreement across the matrix.
W_TOL = 1e-6


@pytest.fixture(scope="module")
def conformance_mvag():
    """Well-separated 3-cluster MVAG, sized so every eigen backend keeps
    its own numerics (n > DENSE_CUTOFF would force nothing; chebyshev's
    ``5 t >= n`` dense fallback needs n > 20) while the whole 18-run
    matrix stays fast."""
    return generate_mvag(
        n_nodes=400,
        n_clusters=3,
        graph_view_strengths=[0.9, 0.25],
        attribute_view_dims=[24, 16],
        attribute_view_signals=[0.8, 0.7],
        seed=17,
    )


@pytest.fixture(scope="module")
def matrix_outputs(conformance_mvag):
    """Every (eigen, knn, fast_path) combination, run once."""
    outputs = {}
    for eigen, knn, fast in MATRIX:
        config = SGLAConfig(
            eigen_backend=eigen,
            knn_backend=knn,
            fast_path=fast,
        )
        outputs[(eigen, knn, fast)] = cluster_mvag(
            conformance_mvag, method="sgla+", config=config
        )
    return outputs


@pytest.mark.parametrize("eigen,knn,fast", MATRIX)
def test_weights_agree_with_reference(matrix_outputs, eigen, knn, fast):
    reference = matrix_outputs[REFERENCE].integration.weights
    weights = matrix_outputs[(eigen, knn, fast)].integration.weights
    delta = float(np.max(np.abs(weights - reference)))
    assert delta < W_TOL, (
        f"w* drifted {delta:.2e} for eigen={eigen}, knn={knn}, "
        f"fast_path={fast}"
    )


@pytest.mark.parametrize("eigen,knn,fast", MATRIX)
def test_labels_identical_to_reference(matrix_outputs, eigen, knn, fast):
    reference = matrix_outputs[REFERENCE].labels
    labels = matrix_outputs[(eigen, knn, fast)].labels
    assert np.array_equal(labels, reference), (
        f"cluster assignments differ for eigen={eigen}, knn={knn}, "
        f"fast_path={fast}"
    )


def test_pairwise_weight_agreement(matrix_outputs):
    """The 1e-6 bound holds between *every* pair, not just vs reference."""
    combos = list(matrix_outputs)
    worst = 0.0
    for first, second in itertools.combinations(combos, 2):
        delta = float(np.max(np.abs(
            matrix_outputs[first].integration.weights
            - matrix_outputs[second].integration.weights
        )))
        worst = max(worst, delta)
    assert worst < 2 * W_TOL  # triangle bound on the per-reference check


def test_matrix_recovers_ground_truth(matrix_outputs, conformance_mvag):
    """Guard against the vacuous-conformance failure mode: all combos
    agreeing on a *degenerate* answer would still pass the parity
    checks, so pin the common answer to the planted clusters."""
    report = clustering_report(
        conformance_mvag.labels, matrix_outputs[REFERENCE].labels
    )
    assert report["ari"] > 0.9


# --------------------------------------------------------------------- #
# Running example (paper Fig. 2)
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def running_example_outputs():
    mvag = running_example_mvag()
    outputs = {}
    for eigen, fast in itertools.product(EIGEN_BACKENDS, FAST_PATHS):
        # No attribute views on the running example, so the knn axis is
        # moot; every eigen backend resolves dense at n=8, making this
        # the exact-equality corner of the matrix.
        config = SGLAConfig(eigen_backend=eigen, fast_path=fast)
        outputs[(eigen, fast)] = cluster_mvag(
            mvag, method="sgla+", config=config
        )
    return outputs


def test_running_example_exact_agreement(running_example_outputs):
    reference = running_example_outputs[("dense", True)]
    for combo, output in running_example_outputs.items():
        assert np.allclose(
            output.integration.weights,
            reference.integration.weights,
            atol=1e-12,
        ), combo
        assert np.array_equal(output.labels, reference.labels), combo


def test_running_example_finds_both_clusters(running_example_outputs):
    mvag = running_example_mvag()
    labels = running_example_outputs[("dense", True)].labels
    report = clustering_report(mvag.labels, labels)
    assert report["ari"] == 1.0


# --------------------------------------------------------------------- #
# rp-forest above the exact-fallback cutoff (genuinely approximate)
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def large_mvag():
    """Above RP_FOREST_MIN_N and 2x leaf_size: the forest really runs."""
    return generate_mvag(
        n_nodes=1000,
        n_clusters=3,
        graph_view_strengths=[0.85],
        attribute_view_dims=[32],
        attribute_view_signals=[0.8],
        seed=19,
    )


def test_rp_forest_structural_agreement(large_mvag):
    """Approximate search changes the KNN graph, so bit-level ``w*``
    parity is out of scope — the conformance guarantee degrades to
    cluster-level agreement with the exact backend."""
    exact = cluster_mvag(
        large_mvag, method="sgla+",
        config=SGLAConfig(knn_backend="exact"),
    )
    forest = cluster_mvag(
        large_mvag, method="sgla+",
        config=SGLAConfig(
            knn_backend="rp-forest",
            knn_params={"leaf_size": 128, "n_trees": 8, "refine_iters": 1},
        ),
    )
    cross = clustering_report(exact.labels, forest.labels)
    assert cross["ari"] > 0.95
    truth = clustering_report(large_mvag.labels, forest.labels)
    assert truth["ari"] > 0.9
    assert float(np.max(np.abs(
        exact.integration.weights - forest.integration.weights
    ))) < 0.05
