"""Tests for the view-weight interpretation helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.weights import (
    effective_view_count,
    format_weight_report,
    weight_entropy,
    weight_report,
)
from repro.utils.errors import ValidationError
from repro.utils.random import random_simplex_point


class TestEntropy:
    def test_uniform_is_one(self):
        assert weight_entropy(np.full(5, 0.2)) == pytest.approx(1.0)

    def test_one_hot_is_zero(self):
        assert weight_entropy([1.0, 0.0, 0.0]) == pytest.approx(0.0)

    def test_single_view_defined(self):
        assert weight_entropy([1.0]) == 1.0

    @given(st.integers(min_value=2, max_value=10), st.integers(0, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_range(self, r, seed):
        weights = random_simplex_point(r, rng=seed)
        assert 0.0 <= weight_entropy(weights) <= 1.0 + 1e-12


class TestEffectiveViews:
    def test_uniform_equals_r(self):
        assert effective_view_count(np.full(4, 0.25)) == pytest.approx(4.0)

    def test_one_hot_equals_one(self):
        assert effective_view_count([0.0, 1.0]) == pytest.approx(1.0)

    @given(st.integers(min_value=2, max_value=8), st.integers(0, 100_000))
    @settings(max_examples=30, deadline=None)
    def test_bounds(self, r, seed):
        weights = random_simplex_point(r, rng=seed)
        effective = effective_view_count(weights)
        assert 1.0 - 1e-9 <= effective <= r + 1e-9


class TestReport:
    def test_ranks_follow_weights(self):
        report = weight_report([0.2, 0.5, 0.3])
        by_index = {row.index: row for row in report}
        assert by_index[1].rank_by_weight == 1
        assert by_index[2].rank_by_weight == 2
        assert by_index[0].rank_by_weight == 3

    def test_solo_probe(self, easy_laplacians):
        from repro.core.objective import SpectralObjective

        objective = SpectralObjective(easy_laplacians, k=3, gamma=0.5)
        report = weight_report(
            np.full(3, 1 / 3), objective=objective, probe_solo=True
        )
        assert all(row.solo_objective is not None for row in report)
        # The noisy view (index 1 in the fixture) should have the worst
        # standalone objective.
        worst = max(report, key=lambda row: row.solo_objective)
        assert worst.index == 1

    def test_probe_requires_objective(self):
        with pytest.raises(ValidationError):
            weight_report([0.5, 0.5], probe_solo=True)

    def test_formatting(self):
        text = format_weight_report(weight_report([0.7, 0.3]))
        assert "view" in text
        assert "0.7000" in text
