"""Tests for repro.utils.validation and the error hierarchy."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.utils.errors import (
    ReproError,
    ShapeError,
    ValidationError,
)
from repro.utils.validation import (
    check_embedding_dim,
    check_finite,
    check_labels,
    check_square,
    check_weights,
)


class TestErrorHierarchy:
    def test_validation_is_value_error(self):
        assert issubclass(ValidationError, ValueError)

    def test_shape_is_validation(self):
        assert issubclass(ShapeError, ValidationError)

    def test_all_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise ShapeError("boom")


class TestCheckSquare:
    def test_accepts_square(self):
        matrix = np.eye(3)
        assert check_square(matrix) is matrix

    def test_rejects_rectangular(self):
        with pytest.raises(ShapeError):
            check_square(np.ones((2, 3)))


class TestCheckFinite:
    def test_accepts_finite_dense(self):
        check_finite(np.ones(3))

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            check_finite(np.array([1.0, np.nan]))

    def test_rejects_inf_sparse(self):
        matrix = sp.csr_matrix(np.array([[np.inf, 0.0], [0.0, 0.0]]))
        with pytest.raises(ValidationError):
            check_finite(matrix)

    def test_empty_sparse_ok(self):
        check_finite(sp.csr_matrix((3, 3)))


class TestCheckLabels:
    def test_basic(self):
        labels = check_labels([0, 1, 2, 1])
        assert labels.dtype == np.int64

    def test_float_integers_accepted(self):
        np.testing.assert_array_equal(check_labels([0.0, 1.0]), [0, 1])

    def test_non_integral_rejected(self):
        with pytest.raises(ValidationError):
            check_labels([0.5, 1.0])

    def test_length_enforced(self):
        with pytest.raises(ShapeError):
            check_labels([0, 1], n=3)

    def test_2d_rejected(self):
        with pytest.raises(ShapeError):
            check_labels(np.zeros((2, 2)))

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            check_labels([])


class TestCheckWeights:
    def test_valid(self):
        weights = check_weights([0.5, 0.5])
        np.testing.assert_allclose(weights, [0.5, 0.5])

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            check_weights([1.5, -0.5])

    def test_sum_enforced(self):
        with pytest.raises(ValidationError):
            check_weights([0.5, 0.2])

    def test_length_enforced(self):
        with pytest.raises(ShapeError):
            check_weights([1.0], r=2)

    def test_tiny_negative_clipped(self):
        weights = check_weights([1.0 + 1e-9, -1e-9])
        assert np.all(weights >= 0)


class TestCheckEmbeddingDim:
    def test_valid(self):
        assert check_embedding_dim(8, 100) == 8

    def test_too_large(self):
        with pytest.raises(ValidationError):
            check_embedding_dim(100, 100)

    def test_non_positive(self):
        with pytest.raises(ValidationError):
            check_embedding_dim(0, 10)
