"""Tests for the synthetic MVAG generator."""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.generator import (
    AttributeViewSpec,
    GraphViewSpec,
    generate_mvag,
    planted_partition_graph,
)
from repro.utils.errors import ValidationError
from repro.utils.sparse import edge_count, is_symmetric


class TestSpecs:
    def test_graph_spec_validation(self):
        with pytest.raises(ValidationError):
            GraphViewSpec(strength=1.5)
        with pytest.raises(ValidationError):
            GraphViewSpec(strength=0.5, avg_degree=0)

    def test_attribute_spec_validation(self):
        with pytest.raises(ValidationError):
            AttributeViewSpec(dim=0)
        with pytest.raises(ValidationError):
            AttributeViewSpec(dim=4, signal=2.0)
        with pytest.raises(ValidationError):
            AttributeViewSpec(dim=4, kind="visual")


class TestPlantedPartition:
    def test_structure(self):
        labels = np.repeat(np.arange(3), 30)
        adjacency = planted_partition_graph(labels, 0.8, 10.0, rng=0)
        assert is_symmetric(adjacency)
        assert adjacency.diagonal().sum() == 0.0

    def test_edge_budget_approximate(self):
        labels = np.repeat(np.arange(2), 100)
        adjacency = planted_partition_graph(labels, 0.5, 12.0, rng=1)
        expected = 200 * 12 / 2
        assert abs(edge_count(adjacency) - expected) / expected < 0.15

    def test_strength_one_fully_assortative(self):
        labels = np.repeat(np.arange(2), 40)
        adjacency = planted_partition_graph(labels, 1.0, 8.0, rng=2)
        rows, cols = adjacency.nonzero()
        assert np.all(labels[rows] == labels[cols])

    def test_strength_controls_assortativity(self):
        labels = np.repeat(np.arange(2), 60)

        def intra_fraction(strength, seed):
            adjacency = planted_partition_graph(labels, strength, 10.0, rng=seed)
            rows, cols = adjacency.nonzero()
            return float(np.mean(labels[rows] == labels[cols]))

        assert intra_fraction(0.9, 3) > intra_fraction(0.1, 3) + 0.3

    def test_strength_zero_near_random(self):
        labels = np.repeat(np.arange(2), 100)
        adjacency = planted_partition_graph(labels, 0.0, 12.0, rng=4)
        rows, cols = adjacency.nonzero()
        intra = float(np.mean(labels[rows] == labels[cols]))
        assert abs(intra - 0.5) < 0.1


class TestGenerateMvag:
    def test_shapes(self):
        mvag = generate_mvag(
            n_nodes=80,
            n_clusters=4,
            graph_view_strengths=[0.7, 0.3],
            attribute_view_dims=[10, 20],
            seed=0,
        )
        assert mvag.n_nodes == 80
        assert mvag.n_graph_views == 2
        assert mvag.n_attribute_views == 2
        assert mvag.n_classes == 4
        assert mvag.attribute_views[0].shape == (80, 10)

    def test_binary_attributes_sparse(self):
        mvag = generate_mvag(
            n_nodes=50,
            n_clusters=2,
            graph_view_strengths=[0.5],
            attribute_view_dims=[
                AttributeViewSpec(dim=30, signal=0.5, kind="binary")
            ],
            seed=1,
        )
        assert sp.issparse(mvag.attribute_views[0])
        data = mvag.attribute_views[0].data
        assert set(np.unique(data)) <= {1.0}

    def test_deterministic(self):
        a = generate_mvag(60, 3, seed=9)
        b = generate_mvag(60, 3, seed=9)
        assert (a.graph_views[0] != b.graph_views[0]).nnz == 0
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = generate_mvag(60, 3, seed=1)
        b = generate_mvag(60, 3, seed=2)
        assert (a.graph_views[0] != b.graph_views[0]).nnz > 0

    def test_all_clusters_populated(self):
        mvag = generate_mvag(40, 5, seed=3)
        counts = np.bincount(mvag.labels)
        assert counts.min() >= 2

    def test_too_few_nodes(self):
        with pytest.raises(ValidationError):
            generate_mvag(5, 3)

    def test_no_views_rejected(self):
        with pytest.raises(ValidationError):
            generate_mvag(
                20, 2, graph_view_strengths=[], attribute_view_dims=[]
            )

    def test_signal_controls_separability(self):
        """Stronger attribute signal must yield larger class separation."""
        from repro.analysis.separation import class_separation

        weak = generate_mvag(
            100, 2, graph_view_strengths=[0.5],
            attribute_view_dims=[8], attribute_view_signals=[0.05], seed=4,
        )
        strong = generate_mvag(
            100, 2, graph_view_strengths=[0.5],
            attribute_view_dims=[8], attribute_view_signals=[0.95], seed=4,
        )
        weak_sep = class_separation(weak.attribute_views[0], weak.labels)
        strong_sep = class_separation(strong.attribute_views[0], strong.labels)
        assert strong_sep > weak_sep * 2

    @given(
        st.integers(min_value=20, max_value=80),
        st.integers(min_value=2, max_value=4),
        st.integers(0, 100_000),
    )
    @settings(max_examples=10, deadline=None)
    def test_invariants(self, n, k, seed):
        mvag = generate_mvag(n, k, seed=seed)
        assert mvag.n_nodes == n
        assert mvag.n_classes == k
        for adjacency in mvag.graph_views:
            assert is_symmetric(adjacency)
            assert adjacency.diagonal().sum() == 0
